#pragma once
// JSON-path-qualified errors and field checks for the scenario-spec layer.
//
// Every validation failure in a ScenarioDoc names the exact location of the
// offending value as a JSON path ("$.server.calm.sigma_log: must be >= 0"),
// so a 200-line composed spec fails with a pointer instead of a shrug. The
// helpers here are the only way the spec layer reads fields: each one takes
// the path of the *containing object* and extends it with the key it reads,
// which is what keeps the paths honest as stacks nest.

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace rt::spec {

/// A JSON path under construction: "$", "$.server", "$.routes[2].type"...
/// Cheap value type; extend with / and pass down by const reference.
class SpecPath {
 public:
  SpecPath() : path_("$") {}

  [[nodiscard]] SpecPath operator/(std::string_view key) const {
    SpecPath p(*this);
    p.path_ += '.';
    p.path_ += key;
    return p;
  }
  [[nodiscard]] SpecPath operator/(std::size_t index) const {
    SpecPath p(*this);
    p.path_ += '[';
    p.path_ += std::to_string(index);
    p.path_ += ']';
    return p;
  }

  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

/// The one exception type of the spec layer; what() always leads with the
/// JSON path of the offending value.
class SpecError : public std::runtime_error {
 public:
  SpecError(const SpecPath& path, const std::string& what)
      : std::runtime_error(path.str() + ": " + what), path_(path.str()) {}

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// -- typed field access (all throw SpecError at path/key) -------------------

/// The object itself; non-objects error at `path`.
const Json::Object& as_object(const Json& j, const SpecPath& path);
const Json::Array& as_array(const Json& j, const SpecPath& path);

/// Rejects keys of `obj` outside `allowed` ("unknown key 'foo'"); the spec
/// layer is strict so typos fail loudly instead of silently defaulting.
void check_keys(const Json& obj, const SpecPath& path,
                std::initializer_list<std::string_view> allowed);

[[nodiscard]] bool has(const Json& obj, const std::string& key);

/// Required fields.
const Json& require(const Json& obj, const SpecPath& path, const std::string& key);
std::string require_string(const Json& obj, const SpecPath& path,
                           const std::string& key);

/// Optional scalars with defaults; present values must have the right type
/// and be finite (numbers). Range checks are the caller's via the *_in /
/// *_min variants below.
double number_or(const Json& obj, const SpecPath& path, const std::string& key,
                 double fallback);
bool bool_or(const Json& obj, const SpecPath& path, const std::string& key,
             bool fallback);
std::string string_or(const Json& obj, const SpecPath& path,
                      const std::string& key, std::string fallback);

/// Finite number in [lo, hi] (inclusive); the message names both bounds.
double number_in(const Json& obj, const SpecPath& path, const std::string& key,
                 double fallback, double lo, double hi);
/// Finite number with an exclusive lower bound (e.g. "> 0").
double number_above(const Json& obj, const SpecPath& path, const std::string& key,
                    double fallback, double lo);
/// Finite number >= lo.
double number_at_least(const Json& obj, const SpecPath& path,
                       const std::string& key, double fallback, double lo);

/// Non-negative integer (seeds, counts); rejects fractions and negatives.
std::uint64_t integer_or(const Json& obj, const SpecPath& path,
                         const std::string& key, std::uint64_t fallback);

}  // namespace rt::spec
