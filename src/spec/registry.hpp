#pragma once
// Factory registries for the declarative scenario layer (docs/SCENARIOS.md,
// docs/ANALYSIS.md §11).
//
// Every composable component family -- server response models, workload
// generators, degraded-mode controllers -- is a registry mapping a `type`
// string to a builder pair:
//
//   * normalize(json, path): strict validation (unknown keys rejected,
//     per-field NaN/range checks) that returns the object with every
//     default materialized. Normalization is idempotent by construction,
//     which is what makes parse -> serialize -> parse a fixed point.
//   * build(normalized, ctx): constructs the runtime component from a
//     normalized object. Model builders recurse through the registry, so a
//     composed stack like faults(routing(bursty(lognormal))) is just nested
//     JSON.
//
// New components self-register with Registry::add under their type string;
// nothing else in the layer enumerates types, so `rtoffload_cli
// --list-types` and error messages ("unknown type ... known: ...") stay
// correct automatically.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "mckp/solvers.hpp"
#include "rt/health.hpp"
#include "server/response_model.hpp"
#include "sim/simulator.hpp"
#include "spec/spec_error.hpp"
#include "util/json.hpp"

namespace rt::spec {

/// A built workload: the task set plus the per-(task, level) request
/// profile (non-empty only for workloads that know payload/compute shapes,
/// e.g. the case study).
struct BuiltWorkload {
  core::TaskSet tasks;
  sim::RequestProfile profile;
};

/// Context handed to build(): pieces of the surrounding document a
/// component may need. `tasks` feeds task-derived models (benefit-driven)
/// and controllers; `odm` is the document's normalized odm section (the
/// pessimistic-odm controller re-solves from it); `default_seed` is the sim
/// seed, used by stochastic models whose spec omitted a private seed.
struct BuildContext {
  const core::TaskSet* tasks = nullptr;
  const Json* odm = nullptr;
  std::uint64_t default_seed = 42;
};

template <typename Built>
class Registry {
 public:
  using Normalize = std::function<Json(const Json&, const SpecPath&)>;
  using Build = std::function<Built(const Json&, const BuildContext&)>;

  struct Entry {
    Normalize normalize;
    Build build;
  };

  void add(const std::string& type, Normalize normalize, Build build) {
    entries_[type] = Entry{std::move(normalize), std::move(build)};
  }

  [[nodiscard]] const Entry& at(const std::string& type,
                                const SpecPath& path) const {
    const auto it = entries_.find(type);
    if (it == entries_.end()) {
      std::string known;
      for (const auto& [name, entry] : entries_) {
        (void)entry;
        if (!known.empty()) known += ", ";
        known += name;
      }
      throw SpecError(path / "type",
                      "unknown type '" + type + "' (known: " + known + ")");
    }
    return it->second;
  }

  /// Registered type strings, sorted.
  [[nodiscard]] std::vector<std::string> types() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      (void)entry;
      out.push_back(name);
    }
    return out;
  }

 private:
  std::map<std::string, Entry> entries_;
};

/// The three component registries (process-wide, built-ins pre-registered).
Registry<std::unique_ptr<server::ResponseModel>>& model_registry();
Registry<BuiltWorkload>& workload_registry();
Registry<health::ModeControllerConfig>& controller_registry();

/// Dispatch helpers: read obj["type"], look it up, delegate.
Json normalize_model(const Json& obj, const SpecPath& path);
std::unique_ptr<server::ResponseModel> build_model(const Json& normalized,
                                                   const BuildContext& ctx);
Json normalize_workload(const Json& obj, const SpecPath& path);
BuiltWorkload build_workload(const Json& normalized, const BuildContext& ctx);
Json normalize_controller(const Json& obj, const SpecPath& path);
health::ModeControllerConfig build_controller(const Json& normalized,
                                              const BuildContext& ctx);

/// Solver-kind names (registered alongside the component builders; the CLI
/// and the odm section share this single table).
mckp::SolverKind solver_from_string(const std::string& name, const SpecPath& path);
const char* solver_name(mckp::SolverKind kind);
std::vector<std::string> solver_names();

/// Fault-script sections appear both standalone ($.faults) and inside the
/// fault-injector model; both share these path-qualified wrappers around
/// server::FaultScript's own field checks.
Json normalize_fault_script(const Json& obj, const SpecPath& path);

}  // namespace rt::spec
