// Built-in component builders for the scenario-spec registries: every
// response-model, workload, and controller type expressible in a
// ScenarioDoc lives here as a (normalize, build) pair. docs/SCENARIOS.md is
// the schema reference; keep the two in sync when adding a type.

#include <cmath>
#include <memory>
#include <utility>

#include "casestudy/case_study.hpp"
#include "core/odm.hpp"
#include "core/serialization.hpp"
#include "core/workload.hpp"
#include "server/bursty.hpp"
#include "server/faults.hpp"
#include "server/gpu_server.hpp"
#include "server/response_model.hpp"
#include "server/routing.hpp"
#include "sim/benefit_response.hpp"
#include "spec/builders_internal.hpp"
#include "spec/scenario_doc.hpp"
#include "util/rng.hpp"

namespace rt::spec::detail {

namespace {

Duration ms_field(const Json& j, const SpecPath& p, const std::string& key,
                  double fallback_ms, double min_ms) {
  return Duration::from_ms(number_at_least(j, p, key, fallback_ms, min_ms));
}

// -- response models --------------------------------------------------------

Json norm_fixed(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "response_ms"});
  require(j, p, "response_ms");
  Json::Object o;
  o["type"] = "fixed";
  o["response_ms"] = number_at_least(j, p, "response_ms", 0.0, 0.0);
  return Json(std::move(o));
}

std::unique_ptr<server::ResponseModel> build_fixed(const Json& j,
                                                   const BuildContext&) {
  return std::make_unique<server::FixedResponse>(
      Duration::from_ms(j.at("response_ms").as_number()));
}

Json norm_never(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type"});
  return Json(Json::Object{{"type", Json("never")}});
}

std::unique_ptr<server::ResponseModel> build_never(const Json&,
                                                   const BuildContext&) {
  return std::make_unique<server::NeverResponds>();
}

Json norm_lognormal(const Json& j, const SpecPath& p) {
  check_keys(j, p,
             {"type", "shift_ms", "mu_log_ms", "sigma_log", "drop_probability"});
  require(j, p, "mu_log_ms");
  require(j, p, "sigma_log");
  Json::Object o;
  o["type"] = "shifted-lognormal";
  o["shift_ms"] = number_at_least(j, p, "shift_ms", 0.0, 0.0);
  o["mu_log_ms"] = number_or(j, p, "mu_log_ms", 0.0);
  o["sigma_log"] = number_at_least(j, p, "sigma_log", 0.0, 0.0);
  o["drop_probability"] = number_in(j, p, "drop_probability", 0.0, 0.0, 1.0);
  return Json(std::move(o));
}

std::unique_ptr<server::ResponseModel> build_lognormal(const Json& j,
                                                       const BuildContext&) {
  return std::make_unique<server::ShiftedLognormalResponse>(
      Duration::from_ms(j.at("shift_ms").as_number()),
      j.at("mu_log_ms").as_number(), j.at("sigma_log").as_number(),
      j.at("drop_probability").as_number());
}

Json norm_empirical(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "samples_ms", "drop_probability"});
  const Json::Array& samples =
      as_array(require(j, p, "samples_ms"), p / "samples_ms");
  if (samples.empty()) {
    throw SpecError(p / "samples_ms", "must be a non-empty array");
  }
  Json::Array out_samples;
  out_samples.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const SpecPath sp = p / "samples_ms" / i;
    if (!samples[i].is_number()) throw SpecError(sp, "must be a number");
    const double v = samples[i].as_number();
    if (!(std::isfinite(v) && v >= 0.0)) {
      throw SpecError(sp, "must be finite and >= 0");
    }
    out_samples.push_back(Json(v));
  }
  Json::Object o;
  o["type"] = "empirical";
  o["samples_ms"] = Json(std::move(out_samples));
  o["drop_probability"] = number_in(j, p, "drop_probability", 0.0, 0.0, 1.0);
  return Json(std::move(o));
}

std::unique_ptr<server::ResponseModel> build_empirical(const Json& j,
                                                       const BuildContext&) {
  std::vector<Duration> samples;
  for (const Json& s : j.at("samples_ms").as_array()) {
    samples.push_back(Duration::from_ms(s.as_number()));
  }
  return std::make_unique<server::EmpiricalResponse>(
      std::move(samples), j.at("drop_probability").as_number());
}

Json norm_bounded(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "bound_ms", "inner"});
  require(j, p, "bound_ms");
  Json::Object o;
  o["type"] = "bounded";
  o["bound_ms"] = number_above(j, p, "bound_ms", 0.0, 0.0);
  o["inner"] = normalize_model(require(j, p, "inner"), p / "inner");
  return Json(std::move(o));
}

std::unique_ptr<server::ResponseModel> build_bounded(const Json& j,
                                                     const BuildContext& ctx) {
  return std::make_unique<server::BoundedResponse>(
      build_model(j.at("inner"), ctx),
      Duration::from_ms(j.at("bound_ms").as_number()));
}

Json norm_bursty(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "seed", "mean_calm_ms", "mean_burst_ms", "calm",
                    "burst"});
  Json::Object o;
  o["type"] = "bursty";
  o["seed"] = Json(static_cast<double>(integer_or(j, p, "seed", 1)));
  o["mean_calm_ms"] = number_above(j, p, "mean_calm_ms", 5000.0, 0.0);
  o["mean_burst_ms"] = number_above(j, p, "mean_burst_ms", 1000.0, 0.0);
  o["calm"] = normalize_model(require(j, p, "calm"), p / "calm");
  o["burst"] = normalize_model(require(j, p, "burst"), p / "burst");
  return Json(std::move(o));
}

std::unique_ptr<server::ResponseModel> build_bursty(const Json& j,
                                                    const BuildContext& ctx) {
  server::BurstyConfig cfg;
  cfg.mean_calm_duration = Duration::from_ms(j.at("mean_calm_ms").as_number());
  cfg.mean_burst_duration = Duration::from_ms(j.at("mean_burst_ms").as_number());
  cfg.calm = build_model(j.at("calm"), ctx);
  cfg.burst = build_model(j.at("burst"), ctx);
  return std::make_unique<server::BurstyResponse>(
      std::move(cfg), static_cast<std::uint64_t>(j.at("seed").as_number()));
}

Json norm_routing(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "routes", "route_of_stream"});
  const Json::Array& routes = as_array(require(j, p, "routes"), p / "routes");
  if (routes.empty()) throw SpecError(p / "routes", "must be a non-empty array");
  Json::Array out_routes;
  out_routes.reserve(routes.size());
  for (std::size_t i = 0; i < routes.size(); ++i) {
    out_routes.push_back(normalize_model(routes[i], p / "routes" / i));
  }
  const Json::Array& mapping =
      as_array(require(j, p, "route_of_stream"), p / "route_of_stream");
  if (mapping.empty()) {
    throw SpecError(p / "route_of_stream", "must be a non-empty array");
  }
  Json::Array out_mapping;
  out_mapping.reserve(mapping.size());
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    const SpecPath mp = p / "route_of_stream" / i;
    if (!mapping[i].is_number()) throw SpecError(mp, "must be a number");
    const double v = mapping[i].as_number();
    if (!(v >= 0.0) || v != std::floor(v) ||
        v >= static_cast<double>(routes.size())) {
      throw SpecError(mp, "must be an integer route index < " +
                              std::to_string(routes.size()));
    }
    out_mapping.push_back(Json(v));
  }
  Json::Object o;
  o["type"] = "routing";
  o["routes"] = Json(std::move(out_routes));
  o["route_of_stream"] = Json(std::move(out_mapping));
  return Json(std::move(o));
}

std::unique_ptr<server::ResponseModel> build_routing(const Json& j,
                                                     const BuildContext& ctx) {
  std::vector<std::unique_ptr<server::ResponseModel>> routes;
  for (const Json& r : j.at("routes").as_array()) {
    routes.push_back(build_model(r, ctx));
  }
  std::vector<std::size_t> mapping;
  for (const Json& m : j.at("route_of_stream").as_array()) {
    mapping.push_back(static_cast<std::size_t>(m.as_number()));
  }
  return std::make_unique<server::RoutingResponse>(std::move(routes),
                                                   std::move(mapping));
}

Json norm_fault_injector(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "inner", "script"});
  Json::Object o;
  o["type"] = "fault-injector";
  o["inner"] = normalize_model(require(j, p, "inner"), p / "inner");
  o["script"] = normalize_fault_script(require(j, p, "script"), p / "script");
  return Json(std::move(o));
}

std::unique_ptr<server::ResponseModel> build_fault_injector(
    const Json& j, const BuildContext& ctx) {
  return std::make_unique<server::FaultInjector>(
      build_model(j.at("inner"), ctx),
      server::FaultScript::from_json(j.at("script")));
}

Json norm_gpu_server(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "seed", "num_executors", "dispatch_overhead_us",
                    "network", "background"});
  Json::Object o;
  o["type"] = "gpu-server";
  o["seed"] = Json(static_cast<double>(integer_or(j, p, "seed", 1)));
  const std::uint64_t executors = integer_or(j, p, "num_executors", 2);
  if (executors < 1) throw SpecError(p / "num_executors", "must be >= 1");
  o["num_executors"] = Json(static_cast<double>(executors));
  o["dispatch_overhead_us"] =
      number_at_least(j, p, "dispatch_overhead_us", 400.0, 0.0);

  const Json net = has(j, "network") ? j.at("network") : Json(Json::Object{});
  const SpecPath np = p / "network";
  check_keys(net, np, {"base_latency_ms", "bandwidth_bytes_per_sec", "jitter",
                       "loss_probability"});
  Json::Object n;
  n["base_latency_ms"] = number_at_least(net, np, "base_latency_ms", 2.0, 0.0);
  n["bandwidth_bytes_per_sec"] =
      number_above(net, np, "bandwidth_bytes_per_sec", 3.0e6, 0.0);
  n["jitter"] = number_at_least(net, np, "jitter", 0.5, 0.0);
  n["loss_probability"] = number_in(net, np, "loss_probability", 0.0, 0.0, 1.0);
  o["network"] = Json(std::move(n));

  const Json bg = has(j, "background") ? j.at("background") : Json(Json::Object{});
  const SpecPath bp = p / "background";
  check_keys(bg, bp, {"arrivals_per_sec", "mean_service_ms", "service_sigma_log"});
  Json::Object b;
  b["arrivals_per_sec"] = number_at_least(bg, bp, "arrivals_per_sec", 0.0, 0.0);
  b["mean_service_ms"] = number_above(bg, bp, "mean_service_ms", 8.0, 0.0);
  b["service_sigma_log"] =
      number_at_least(bg, bp, "service_sigma_log", 0.6, 0.0);
  o["background"] = Json(std::move(b));
  return Json(std::move(o));
}

std::unique_ptr<server::ResponseModel> build_gpu_server(const Json& j,
                                                        const BuildContext&) {
  server::GpuServerConfig cfg;
  cfg.num_executors = static_cast<int>(j.at("num_executors").as_number());
  cfg.dispatch_overhead =
      Duration::from_ms(j.at("dispatch_overhead_us").as_number() / 1e3);
  const Json& n = j.at("network");
  cfg.network.base_latency = Duration::from_ms(n.at("base_latency_ms").as_number());
  cfg.network.bandwidth_bytes_per_sec =
      n.at("bandwidth_bytes_per_sec").as_number();
  cfg.network.jitter = n.at("jitter").as_number();
  cfg.network.loss_probability = n.at("loss_probability").as_number();
  const Json& b = j.at("background");
  cfg.background.arrivals_per_sec = b.at("arrivals_per_sec").as_number();
  cfg.background.mean_service = Duration::from_ms(b.at("mean_service_ms").as_number());
  cfg.background.service_sigma_log = b.at("service_sigma_log").as_number();
  return std::make_unique<server::QueueingGpuServer>(
      cfg, static_cast<std::uint64_t>(j.at("seed").as_number()));
}

Json norm_scenario(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "name", "seed"});
  const std::string name = require_string(j, p, "name");
  if (name != "busy" && name != "not-busy" && name != "idle" && name != "dead") {
    throw SpecError(p / "name", "unknown scenario '" + name +
                                    "' (known: busy, dead, idle, not-busy)");
  }
  Json::Object o;
  o["type"] = "scenario";
  o["name"] = name;
  // An omitted seed stays omitted: it defaults to the document's sim seed
  // at build time, which normalization cannot know here.
  if (has(j, "seed")) {
    o["seed"] = Json(static_cast<double>(integer_or(j, p, "seed", 1)));
  }
  return Json(std::move(o));
}

std::unique_ptr<server::ResponseModel> build_scenario_model(
    const Json& j, const BuildContext& ctx) {
  const std::string& name = j.at("name").as_string();
  if (name == "dead") return std::make_unique<server::NeverResponds>();
  const std::uint64_t seed =
      has(j, "seed") ? static_cast<std::uint64_t>(j.at("seed").as_number())
                     : ctx.default_seed;
  if (name == "busy") {
    return server::make_scenario_server(server::Scenario::kBusy, seed);
  }
  if (name == "idle") {
    return server::make_scenario_server(server::Scenario::kIdle, seed);
  }
  return server::make_scenario_server(server::Scenario::kNotBusy, seed);
}

Json norm_benefit_driven(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type"});
  return Json(Json::Object{{"type", Json("benefit-driven")}});
}

std::unique_ptr<server::ResponseModel> build_benefit_driven(
    const Json&, const BuildContext& ctx) {
  if (ctx.tasks == nullptr) {
    throw std::invalid_argument(
        "benefit-driven model needs the document's task set");
  }
  std::vector<core::BenefitFunction> gs;
  gs.reserve(ctx.tasks->size());
  for (const auto& t : *ctx.tasks) gs.push_back(t.benefit);
  return std::make_unique<sim::BenefitDrivenResponse>(std::move(gs));
}

// -- workloads --------------------------------------------------------------

/// Optional per-task importance weights shared by every workload type;
/// emitted into `out` only when present.
void norm_weights(const Json& j, const SpecPath& p, std::size_t num_tasks,
                  Json::Object& out) {
  if (!has(j, "weights")) return;
  const Json::Array& w = as_array(j.at("weights"), p / "weights");
  if (w.size() != num_tasks) {
    throw SpecError(p / "weights", "must have exactly " +
                                       std::to_string(num_tasks) +
                                       " entries (one per task)");
  }
  Json::Array ws;
  ws.reserve(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    const SpecPath wp = p / "weights" / i;
    if (!w[i].is_number()) throw SpecError(wp, "must be a number");
    const double v = w[i].as_number();
    if (!(std::isfinite(v) && v > 0.0)) throw SpecError(wp, "must be > 0");
    ws.push_back(Json(v));
  }
  out["weights"] = Json(std::move(ws));
}

void apply_weights(const Json& j, core::TaskSet& tasks) {
  if (!has(j, "weights")) return;
  const Json::Array& w = j.at("weights").as_array();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].weight = w[i].as_number();
  }
}

Json norm_inline_workload(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "tasks", "weights"});
  const Json& tasks_json = require(j, p, "tasks");
  core::TaskSet tasks;
  try {
    // Reuse the task-schema checks of core/serialization; the round trip
    // materializes every optional field (deadline, compensation, ...).
    tasks = core::task_set_from_json(
        Json(Json::Object{{"tasks", tasks_json}}));
  } catch (const std::exception& e) {
    throw SpecError(p / "tasks", e.what());
  }
  Json::Object o;
  o["type"] = "inline";
  o["tasks"] = core::task_set_to_json(tasks).at("tasks");
  norm_weights(j, p, tasks.size(), o);
  return Json(std::move(o));
}

BuiltWorkload build_inline_workload(const Json& j, const BuildContext&) {
  BuiltWorkload w;
  w.tasks = core::task_set_from_json(Json(Json::Object{{"tasks", j.at("tasks")}}));
  apply_weights(j, w.tasks);
  return w;
}

Json norm_paper_workload(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "seed", "num_tasks", "wcet_max_ms", "period_min_ms",
                    "period_max_ms", "response_min_ms", "response_max_ms",
                    "probability_steps", "weights"});
  Json::Object o;
  o["type"] = "paper";
  o["seed"] = Json(static_cast<double>(integer_or(j, p, "seed", 20140601)));
  const std::uint64_t n = integer_or(j, p, "num_tasks", 30);
  if (n < 1) throw SpecError(p / "num_tasks", "must be >= 1");
  o["num_tasks"] = Json(static_cast<double>(n));
  o["wcet_max_ms"] = number_above(j, p, "wcet_max_ms", 20.0, 0.0);
  const double period_min = number_above(j, p, "period_min_ms", 600.0, 0.0);
  const double period_max = number_above(j, p, "period_max_ms", 700.0, 0.0);
  if (period_max < period_min) {
    throw SpecError(p / "period_max_ms", "must be >= period_min_ms");
  }
  o["period_min_ms"] = period_min;
  o["period_max_ms"] = period_max;
  const double resp_min = number_above(j, p, "response_min_ms", 100.0, 0.0);
  const double resp_max = number_above(j, p, "response_max_ms", 200.0, 0.0);
  if (resp_max < resp_min) {
    throw SpecError(p / "response_max_ms", "must be >= response_min_ms");
  }
  o["response_min_ms"] = resp_min;
  o["response_max_ms"] = resp_max;
  const std::uint64_t steps = integer_or(j, p, "probability_steps", 10);
  if (steps < 1) throw SpecError(p / "probability_steps", "must be >= 1");
  o["probability_steps"] = Json(static_cast<double>(steps));
  norm_weights(j, p, static_cast<std::size_t>(n), o);
  return Json(std::move(o));
}

BuiltWorkload build_paper_workload(const Json& j, const BuildContext&) {
  core::PaperSimConfig cfg;
  cfg.num_tasks = static_cast<int>(j.at("num_tasks").as_number());
  cfg.wcet_max = Duration::from_ms(j.at("wcet_max_ms").as_number());
  cfg.period_min = Duration::from_ms(j.at("period_min_ms").as_number());
  cfg.period_max = Duration::from_ms(j.at("period_max_ms").as_number());
  cfg.response_min = Duration::from_ms(j.at("response_min_ms").as_number());
  cfg.response_max = Duration::from_ms(j.at("response_max_ms").as_number());
  cfg.probability_steps = static_cast<int>(j.at("probability_steps").as_number());
  Rng rng(static_cast<std::uint64_t>(j.at("seed").as_number()));
  BuiltWorkload w;
  w.tasks = core::make_paper_simulation_taskset(rng, cfg);
  apply_weights(j, w.tasks);
  return w;
}

Json norm_random_workload(const Json& j, const SpecPath& p) {
  check_keys(j, p,
             {"type", "seed", "num_tasks", "total_local_utilization",
              "period_min_ms", "period_max_ms", "setup_fraction_min",
              "setup_fraction_max", "benefit_points",
              "response_deadline_fraction_min",
              "response_deadline_fraction_max", "weights"});
  Json::Object o;
  o["type"] = "random";
  o["seed"] = Json(static_cast<double>(integer_or(j, p, "seed", 1)));
  const std::uint64_t n = integer_or(j, p, "num_tasks", 10);
  if (n < 1) throw SpecError(p / "num_tasks", "must be >= 1");
  o["num_tasks"] = Json(static_cast<double>(n));
  o["total_local_utilization"] =
      number_above(j, p, "total_local_utilization", 0.5, 0.0);
  const double period_min = number_above(j, p, "period_min_ms", 10.0, 0.0);
  const double period_max = number_above(j, p, "period_max_ms", 1000.0, 0.0);
  if (period_max < period_min) {
    throw SpecError(p / "period_max_ms", "must be >= period_min_ms");
  }
  o["period_min_ms"] = period_min;
  o["period_max_ms"] = period_max;
  const double sf_min = number_in(j, p, "setup_fraction_min", 0.05, 0.0, 1.0);
  const double sf_max = number_in(j, p, "setup_fraction_max", 0.3, 0.0, 1.0);
  if (sf_max < sf_min) {
    throw SpecError(p / "setup_fraction_max", "must be >= setup_fraction_min");
  }
  o["setup_fraction_min"] = sf_min;
  o["setup_fraction_max"] = sf_max;
  const std::uint64_t points = integer_or(j, p, "benefit_points", 5);
  if (points < 1) throw SpecError(p / "benefit_points", "must be >= 1");
  o["benefit_points"] = Json(static_cast<double>(points));
  const double rf_min =
      number_in(j, p, "response_deadline_fraction_min", 0.1, 0.0, 1.0);
  const double rf_max =
      number_in(j, p, "response_deadline_fraction_max", 0.6, 0.0, 1.0);
  if (rf_max < rf_min) {
    throw SpecError(p / "response_deadline_fraction_max",
                    "must be >= response_deadline_fraction_min");
  }
  o["response_deadline_fraction_min"] = rf_min;
  o["response_deadline_fraction_max"] = rf_max;
  norm_weights(j, p, static_cast<std::size_t>(n), o);
  return Json(std::move(o));
}

BuiltWorkload build_random_workload(const Json& j, const BuildContext&) {
  core::RandomTasksetConfig cfg;
  cfg.num_tasks = static_cast<int>(j.at("num_tasks").as_number());
  cfg.total_local_utilization = j.at("total_local_utilization").as_number();
  cfg.period_min = Duration::from_ms(j.at("period_min_ms").as_number());
  cfg.period_max = Duration::from_ms(j.at("period_max_ms").as_number());
  cfg.setup_fraction_min = j.at("setup_fraction_min").as_number();
  cfg.setup_fraction_max = j.at("setup_fraction_max").as_number();
  cfg.benefit_points = static_cast<int>(j.at("benefit_points").as_number());
  cfg.response_deadline_fraction_min =
      j.at("response_deadline_fraction_min").as_number();
  cfg.response_deadline_fraction_max =
      j.at("response_deadline_fraction_max").as_number();
  Rng rng(static_cast<std::uint64_t>(j.at("seed").as_number()));
  BuiltWorkload w;
  w.tasks = core::make_random_taskset(rng, cfg);
  apply_weights(j, w.tasks);
  return w;
}

Json norm_casestudy_workload(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "seed", "percentile", "weights"});
  Json::Object o;
  o["type"] = "case-study";
  o["seed"] = Json(static_cast<double>(integer_or(j, p, "seed", 2014)));
  o["percentile"] = number_in(j, p, "percentile", 90.0, 0.0, 100.0);
  norm_weights(j, p, 4, o);
  return Json(std::move(o));
}

BuiltWorkload build_casestudy_workload(const Json& j, const BuildContext&) {
  casestudy::CaseStudyConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(j.at("seed").as_number());
  cfg.percentile = j.at("percentile").as_number();
  const casestudy::CaseStudy study = casestudy::build_case_study(cfg);
  BuiltWorkload w;
  w.tasks = study.task_set();
  w.profile = study.request_profile();
  apply_weights(j, w.tasks);
  return w;
}

// -- controllers ------------------------------------------------------------

Json norm_health(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"window", "min_samples", "degrade_below", "recover_above",
                    "ewma_alpha", "min_normal_dwell_ms", "min_degraded_dwell_ms"});
  health::HealthConfig hc;
  hc.window = static_cast<std::size_t>(integer_or(j, p, "window", 32));
  hc.min_samples = static_cast<std::size_t>(integer_or(j, p, "min_samples", 8));
  hc.degrade_below = number_in(j, p, "degrade_below", 0.5, 0.0, 1.0);
  hc.recover_above = number_in(j, p, "recover_above", 0.8, 0.0, 1.0);
  hc.ewma_alpha = number_in(j, p, "ewma_alpha", 0.2, 0.0, 1.0);
  hc.min_normal_dwell = ms_field(j, p, "min_normal_dwell_ms", 500.0, 0.0);
  hc.min_degraded_dwell = ms_field(j, p, "min_degraded_dwell_ms", 2000.0, 0.0);
  try {
    hc.validate();  // the cross-field checks of rt/health (hysteresis band)
  } catch (const std::exception& e) {
    throw SpecError(p, e.what());
  }
  Json::Object o;
  o["window"] = Json(static_cast<double>(hc.window));
  o["min_samples"] = Json(static_cast<double>(hc.min_samples));
  o["degrade_below"] = hc.degrade_below;
  o["recover_above"] = hc.recover_above;
  o["ewma_alpha"] = hc.ewma_alpha;
  o["min_normal_dwell_ms"] = hc.min_normal_dwell.ms();
  o["min_degraded_dwell_ms"] = hc.min_degraded_dwell.ms();
  return Json(std::move(o));
}

health::HealthConfig build_health(const Json& j) {
  health::HealthConfig hc;
  hc.window = static_cast<std::size_t>(j.at("window").as_number());
  hc.min_samples = static_cast<std::size_t>(j.at("min_samples").as_number());
  hc.degrade_below = j.at("degrade_below").as_number();
  hc.recover_above = j.at("recover_above").as_number();
  hc.ewma_alpha = j.at("ewma_alpha").as_number();
  hc.min_normal_dwell = Duration::from_ms(j.at("min_normal_dwell_ms").as_number());
  hc.min_degraded_dwell =
      Duration::from_ms(j.at("min_degraded_dwell_ms").as_number());
  return hc;
}

Json health_section(const Json& j, const SpecPath& p) {
  const Json hc = has(j, "health") ? j.at("health") : Json(Json::Object{});
  return norm_health(hc, p / "health");
}

Json norm_all_local(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "health"});
  Json::Object o;
  o["type"] = "all-local";
  o["health"] = health_section(j, p);
  return Json(std::move(o));
}

health::ModeControllerConfig build_all_local(const Json& j,
                                             const BuildContext&) {
  health::ModeControllerConfig mc;
  mc.health = build_health(j.at("health"));
  // Empty degraded vector = all-local (materialized by ModeController).
  return mc;
}

Json norm_pessimistic_odm(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "health", "estimation_error"});
  require(j, p, "estimation_error");
  Json::Object o;
  o["type"] = "pessimistic-odm";
  o["estimation_error"] = number_above(j, p, "estimation_error", 0.0, -1.0);
  o["health"] = health_section(j, p);
  return Json(std::move(o));
}

health::ModeControllerConfig build_pessimistic_odm(const Json& j,
                                                   const BuildContext& ctx) {
  if (ctx.tasks == nullptr || ctx.odm == nullptr) {
    throw std::invalid_argument(
        "pessimistic-odm controller needs the document's task set and odm "
        "section");
  }
  core::OdmConfig cfg = build_odm_config(*ctx.odm);
  cfg.estimation_error = j.at("estimation_error").as_number();
  health::ModeControllerConfig mc;
  mc.health = build_health(j.at("health"));
  mc.degraded = core::decide_offloading(*ctx.tasks, cfg).decisions;
  return mc;
}

Json norm_explicit_controller(const Json& j, const SpecPath& p) {
  check_keys(j, p, {"type", "health", "decisions"});
  const Json::Array& decisions =
      as_array(require(j, p, "decisions"), p / "decisions");
  if (decisions.empty()) {
    throw SpecError(p / "decisions", "must be a non-empty array");
  }
  Json::Array out_decisions;
  out_decisions.reserve(decisions.size());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const SpecPath dp = p / "decisions" / i;
    check_keys(decisions[i], dp, {"level", "response_ms"});
    Json::Object d;
    d["level"] = Json(static_cast<double>(integer_or(decisions[i], dp, "level", 0)));
    d["response_ms"] = number_at_least(decisions[i], dp, "response_ms", 0.0, 0.0);
    out_decisions.push_back(Json(std::move(d)));
  }
  Json::Object o;
  o["type"] = "explicit";
  o["decisions"] = Json(std::move(out_decisions));
  o["health"] = health_section(j, p);
  return Json(std::move(o));
}

health::ModeControllerConfig build_explicit_controller(const Json& j,
                                                       const BuildContext& ctx) {
  const Json::Array& decisions = j.at("decisions").as_array();
  if (ctx.tasks != nullptr && decisions.size() != ctx.tasks->size()) {
    throw std::invalid_argument(
        "explicit controller: decisions arity (" +
        std::to_string(decisions.size()) + ") does not match the task set (" +
        std::to_string(ctx.tasks->size()) + ")");
  }
  health::ModeControllerConfig mc;
  mc.health = build_health(j.at("health"));
  for (const Json& d : decisions) {
    const auto level = static_cast<std::size_t>(d.at("level").as_number());
    const Duration r = Duration::from_ms(d.at("response_ms").as_number());
    mc.degraded.push_back(level == 0 ? core::Decision::local()
                                     : core::Decision::offload(level, r));
  }
  return mc;
}

}  // namespace

void register_builtin_models(
    Registry<std::unique_ptr<server::ResponseModel>>& r) {
  r.add("fixed", norm_fixed, build_fixed);
  r.add("never", norm_never, build_never);
  r.add("shifted-lognormal", norm_lognormal, build_lognormal);
  r.add("empirical", norm_empirical, build_empirical);
  r.add("bounded", norm_bounded, build_bounded);
  r.add("bursty", norm_bursty, build_bursty);
  r.add("routing", norm_routing, build_routing);
  r.add("fault-injector", norm_fault_injector, build_fault_injector);
  r.add("gpu-server", norm_gpu_server, build_gpu_server);
  r.add("scenario", norm_scenario, build_scenario_model);
  r.add("benefit-driven", norm_benefit_driven, build_benefit_driven);
}

void register_builtin_workloads(Registry<BuiltWorkload>& r) {
  r.add("inline", norm_inline_workload, build_inline_workload);
  r.add("paper", norm_paper_workload, build_paper_workload);
  r.add("random", norm_random_workload, build_random_workload);
  r.add("case-study", norm_casestudy_workload, build_casestudy_workload);
}

void register_builtin_controllers(Registry<health::ModeControllerConfig>& r) {
  r.add("all-local", norm_all_local, build_all_local);
  r.add("pessimistic-odm", norm_pessimistic_odm, build_pessimistic_odm);
  r.add("explicit", norm_explicit_controller, build_explicit_controller);
}

}  // namespace rt::spec::detail
