#include "spec/grid.hpp"

#include <cmath>
#include <string>
#include <utility>
#include <variant>

namespace rt::spec {

namespace {

using PathToken = std::variant<std::string, std::size_t>;

/// "faults.clauses[0].factor" -> {"faults", "clauses", 0, "factor"}.
std::vector<PathToken> tokenize_path(std::string_view dotted,
                                     const SpecPath& errpath) {
  std::vector<PathToken> tokens;
  std::size_t i = 0;
  while (i < dotted.size()) {
    if (dotted[i] == '.') {
      throw SpecError(errpath, "malformed path '" + std::string(dotted) +
                                   "': empty segment");
    }
    if (dotted[i] == '[') {
      std::size_t j = i + 1;
      std::size_t index = 0;
      bool any = false;
      while (j < dotted.size() && dotted[j] >= '0' && dotted[j] <= '9') {
        index = index * 10 + static_cast<std::size_t>(dotted[j] - '0');
        any = true;
        ++j;
      }
      if (!any || j >= dotted.size() || dotted[j] != ']') {
        throw SpecError(errpath, "malformed path '" + std::string(dotted) +
                                     "': expected [<index>]");
      }
      tokens.emplace_back(index);
      i = j + 1;
      if (i < dotted.size() && dotted[i] == '.') ++i;
      continue;
    }
    std::size_t j = i;
    while (j < dotted.size() && dotted[j] != '.' && dotted[j] != '[') ++j;
    tokens.emplace_back(std::string(dotted.substr(i, j - i)));
    i = j;
    if (i < dotted.size() && dotted[i] == '.') ++i;
  }
  if (tokens.empty()) {
    throw SpecError(errpath, "malformed path: empty");
  }
  return tokens;
}

}  // namespace

void set_at_path(Json& doc, std::string_view dotted, const Json& value,
                 const SpecPath& errpath) {
  const std::vector<PathToken> tokens = tokenize_path(dotted, errpath);
  Json* node = &doc;
  // Walk to the parent of the final token; intermediates must exist so a
  // typo'd axis path fails loudly instead of growing a dangling subtree.
  for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
    if (const auto* key = std::get_if<std::string>(&tokens[t])) {
      if (!node->is_object() || !node->contains(*key)) {
        throw SpecError(errpath, "path '" + std::string(dotted) +
                                     "' does not resolve: no key '" + *key + "'");
      }
      node = &node->as_object().at(*key);
    } else {
      const std::size_t index = std::get<std::size_t>(tokens[t]);
      if (!node->is_array() || index >= node->as_array().size()) {
        throw SpecError(errpath, "path '" + std::string(dotted) +
                                     "' does not resolve: index " +
                                     std::to_string(index) + " out of range");
      }
      node = &node->as_array()[index];
    }
  }
  if (const auto* key = std::get_if<std::string>(&tokens.back())) {
    if (!node->is_object()) {
      throw SpecError(errpath, "path '" + std::string(dotted) +
                                   "' does not resolve to an object key");
    }
    node->as_object()[*key] = value;  // creating the leaf key is allowed
  } else {
    const std::size_t index = std::get<std::size_t>(tokens.back());
    if (!node->is_array() || index >= node->as_array().size()) {
      throw SpecError(errpath, "path '" + std::string(dotted) +
                                   "' does not resolve: index " +
                                   std::to_string(index) + " out of range");
    }
    node->as_array()[index] = value;
  }
}

ScenarioDoc with_override(const ScenarioDoc& doc, std::string_view dotted,
                          const Json& value) {
  Json j = doc.to_json();
  set_at_path(j, dotted, value, SpecPath());
  return ScenarioDoc::parse(j);
}

std::vector<ScenarioDoc> expand_grid(const ScenarioDoc& doc) {
  Json base = doc.to_json();
  if (base.is_object()) base.as_object().erase("sweep");
  if (doc.sweep.is_null()) return {ScenarioDoc::parse(base)};

  const Json::Array& axes = doc.sweep.at("axes").as_array();
  if (axes.empty()) return {ScenarioDoc::parse(base)};

  std::size_t total = 1;
  for (const Json& axis : axes) total *= axis.at("values").as_array().size();

  std::vector<ScenarioDoc> out;
  out.reserve(total);
  for (std::size_t cell = 0; cell < total; ++cell) {
    Json child = base;
    // Row-major: the first axis varies slowest (matches the Fig. 3 sweep's
    // errors-outer / solvers-inner cell layout).
    std::size_t rem = cell;
    std::size_t stride = total;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const SpecPath ap = SpecPath() / "sweep" / "axes" / a;
      const Json::Array& values = axes[a].at("values").as_array();
      stride /= values.size();
      const std::size_t pick = rem / stride;
      rem %= stride;
      set_at_path(child, axes[a].at("path").as_string(), values[pick],
                  ap / "path");
    }
    out.push_back(ScenarioDoc::parse(child));
  }
  return out;
}

BatchPlan plan_batch(const ScenarioDoc& doc) {
  BatchPlan plan;
  plan.docs = expand_grid(doc);
  plan.specs.reserve(plan.docs.size());
  for (std::size_t i = 0; i < plan.docs.size(); ++i) {
    exp::ScenarioSpec spec = to_scenario_spec(plan.docs[i]);
    spec.tag = static_cast<std::uint64_t>(i);
    plan.specs.push_back(std::move(spec));
  }
  if (!doc.sweep.is_null()) {
    plan.batch.base_seed =
        static_cast<std::uint64_t>(doc.sweep.at("base_seed").as_number());
    plan.batch.jobs =
        static_cast<unsigned>(doc.sweep.at("jobs").as_number());
  }
  return plan;
}

exp::Fig3SweepConfig fig3_config_from_doc(const ScenarioDoc& doc) {
  const SpecPath root;
  if (doc.workload.at("type").as_string() != "paper") {
    throw SpecError(root / "workload" / "type",
                    "the Figure 3 sweep needs the 'paper' workload");
  }
  if (doc.server.is_null() ||
      doc.server.at("type").as_string() != "benefit-driven") {
    throw SpecError(root / "server",
                    "the Figure 3 sweep needs the 'benefit-driven' server");
  }
  if (doc.odm.at("apply_task_weights").as_bool()) {
    throw SpecError(root / "odm" / "apply_task_weights",
                    "the Figure 3 sweep is unweighted; set it to false");
  }
  if (doc.sim.at("benefit_semantics").as_string() != "timely-count") {
    throw SpecError(root / "sim" / "benefit_semantics",
                    "the Figure 3 sweep counts timely results; set "
                    "'timely-count'");
  }
  if (doc.sweep.is_null()) {
    throw SpecError(root / "sweep", "required for the Figure 3 sweep");
  }
  const Json::Array& axes = doc.sweep.at("axes").as_array();
  if (axes.size() != 2 ||
      axes[0].at("path").as_string() != "odm.estimation_error" ||
      axes[1].at("path").as_string() != "odm.solver") {
    throw SpecError(root / "sweep" / "axes",
                    "the Figure 3 sweep needs exactly the axes "
                    "['odm.estimation_error', 'odm.solver'] in that order");
  }

  exp::Fig3SweepConfig cfg;
  const Json& w = doc.workload;
  cfg.taskset_seed = static_cast<std::uint64_t>(w.at("seed").as_number());
  cfg.workload.num_tasks = static_cast<int>(w.at("num_tasks").as_number());
  cfg.workload.wcet_max = Duration::from_ms(w.at("wcet_max_ms").as_number());
  cfg.workload.period_min = Duration::from_ms(w.at("period_min_ms").as_number());
  cfg.workload.period_max = Duration::from_ms(w.at("period_max_ms").as_number());
  cfg.workload.response_min =
      Duration::from_ms(w.at("response_min_ms").as_number());
  cfg.workload.response_max =
      Duration::from_ms(w.at("response_max_ms").as_number());
  cfg.workload.probability_steps =
      static_cast<int>(w.at("probability_steps").as_number());

  cfg.errors.clear();
  for (std::size_t i = 0; i < axes[0].at("values").as_array().size(); ++i) {
    const Json& v = axes[0].at("values").as_array()[i];
    const SpecPath vp = root / "sweep" / "axes" / std::size_t{0} / "values" / i;
    if (!v.is_number() || !std::isfinite(v.as_number()) ||
        !(v.as_number() > -1.0)) {
      throw SpecError(vp, "must be a finite number > -1");
    }
    cfg.errors.push_back(v.as_number());
  }
  cfg.solvers.clear();
  for (std::size_t i = 0; i < axes[1].at("values").as_array().size(); ++i) {
    const Json& v = axes[1].at("values").as_array()[i];
    const SpecPath vp = root / "sweep" / "axes" / std::size_t{1} / "values" / i;
    if (!v.is_string()) throw SpecError(vp, "must be a solver name string");
    cfg.solvers.push_back(solver_from_string(v.as_string(), vp));
  }

  cfg.horizon = Duration::from_ms(doc.sim.at("horizon_ms").as_number());
  cfg.batch.base_seed =
      static_cast<std::uint64_t>(doc.sweep.at("base_seed").as_number());
  cfg.batch.jobs = static_cast<unsigned>(doc.sweep.at("jobs").as_number());
  return cfg;
}

}  // namespace rt::spec
