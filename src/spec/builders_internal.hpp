#pragma once
// Internal: registration hooks for the built-in component builders
// (builders.cpp), called once by the registry singletons (registry.cpp).
// Explicit registration keeps the static library linker-proof: file-scope
// self-registration objects in an otherwise-unreferenced translation unit
// can legally be dropped from a static archive.

#include "spec/registry.hpp"

namespace rt::spec::detail {

void register_builtin_models(Registry<std::unique_ptr<server::ResponseModel>>& r);
void register_builtin_workloads(Registry<BuiltWorkload>& r);
void register_builtin_controllers(Registry<health::ModeControllerConfig>& r);

}  // namespace rt::spec::detail
