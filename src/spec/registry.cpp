#include "spec/registry.hpp"

#include "server/faults.hpp"
#include "spec/builders_internal.hpp"

namespace rt::spec {

Registry<std::unique_ptr<server::ResponseModel>>& model_registry() {
  static Registry<std::unique_ptr<server::ResponseModel>>* reg = [] {
    auto* r = new Registry<std::unique_ptr<server::ResponseModel>>();
    detail::register_builtin_models(*r);
    return r;
  }();
  return *reg;
}

Registry<BuiltWorkload>& workload_registry() {
  static Registry<BuiltWorkload>* reg = [] {
    auto* r = new Registry<BuiltWorkload>();
    detail::register_builtin_workloads(*r);
    return r;
  }();
  return *reg;
}

Registry<health::ModeControllerConfig>& controller_registry() {
  static Registry<health::ModeControllerConfig>* reg = [] {
    auto* r = new Registry<health::ModeControllerConfig>();
    detail::register_builtin_controllers(*r);
    return r;
  }();
  return *reg;
}

namespace {

std::string type_of(const Json& obj, const SpecPath& path) {
  return require_string(obj, path, "type");
}

}  // namespace

Json normalize_model(const Json& obj, const SpecPath& path) {
  return model_registry().at(type_of(obj, path), path).normalize(obj, path);
}

std::unique_ptr<server::ResponseModel> build_model(const Json& normalized,
                                                   const BuildContext& ctx) {
  const SpecPath path;
  return model_registry()
      .at(type_of(normalized, path), path)
      .build(normalized, ctx);
}

Json normalize_workload(const Json& obj, const SpecPath& path) {
  return workload_registry().at(type_of(obj, path), path).normalize(obj, path);
}

BuiltWorkload build_workload(const Json& normalized, const BuildContext& ctx) {
  const SpecPath path;
  return workload_registry()
      .at(type_of(normalized, path), path)
      .build(normalized, ctx);
}

Json normalize_controller(const Json& obj, const SpecPath& path) {
  return controller_registry().at(type_of(obj, path), path).normalize(obj, path);
}

health::ModeControllerConfig build_controller(const Json& normalized,
                                              const BuildContext& ctx) {
  const SpecPath path;
  return controller_registry()
      .at(type_of(normalized, path), path)
      .build(normalized, ctx);
}

mckp::SolverKind solver_from_string(const std::string& name,
                                    const SpecPath& path) {
  if (name == "dp-profits") return mckp::SolverKind::kDpProfits;
  if (name == "heu-oe") return mckp::SolverKind::kHeuOe;
  if (name == "dp-weights") return mckp::SolverKind::kDpWeights;
  throw SpecError(path, "unknown solver '" + name +
                            "' (known: dp-profits, dp-weights, heu-oe)");
}

const char* solver_name(mckp::SolverKind kind) {
  switch (kind) {
    case mckp::SolverKind::kDpProfits: return "dp-profits";
    case mckp::SolverKind::kHeuOe: return "heu-oe";
    case mckp::SolverKind::kDpWeights: return "dp-weights";
  }
  return "?";
}

std::vector<std::string> solver_names() {
  return {"dp-profits", "dp-weights", "heu-oe"};
}

Json normalize_fault_script(const Json& obj, const SpecPath& path) {
  check_keys(obj, path, {"seed", "clauses"});
  Json::Object out;
  out["seed"] = Json(static_cast<double>(integer_or(obj, path, "seed", 1)));
  Json::Array clauses;
  if (has(obj, "clauses")) {
    const Json::Array& in = as_array(obj.at("clauses"), path / "clauses");
    clauses.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const SpecPath cpath = path / "clauses" / i;
      check_keys(in[i], cpath,
                 {"kind", "start_ms", "end_ms", "factor", "drop_probability",
                  "period_ms", "duty"});
      try {
        // Reuse the per-field checks of server::FaultClause (ANALYSIS §10);
        // its to_json round trip materializes the kind-specific defaults.
        clauses.push_back(server::FaultClause::from_json(in[i]).to_json());
      } catch (const std::exception& e) {
        throw SpecError(cpath, e.what());
      }
    }
  }
  out["clauses"] = Json(std::move(clauses));
  return Json(std::move(out));
}

}  // namespace rt::spec
