#include "casestudy/case_study.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "img/quality.hpp"
#include "img/scale.hpp"
#include "server/estimator.hpp"

namespace rt::casestudy {

namespace {

/// The representative input image for each task kind (stereo/motion tasks
/// are measured on their primary frame).
img::Image scene_for(img::TaskKind kind, int w, int h, std::uint64_t seed) {
  switch (kind) {
    case img::TaskKind::kStereoVision:
      return img::make_stereo_pair(w, h, seed).left;
    case img::TaskKind::kMotionDetection:
      return img::make_motion_pair(w, h, seed).frame0;
    case img::TaskKind::kEdgeDetection:
    case img::TaskKind::kObjectRecognition: {
      img::SceneSpec spec;
      spec.seed = seed;
      return img::make_scene(w, h, spec);
    }
  }
  throw std::invalid_argument("scene_for: unknown task kind");
}

std::size_t level_pixels(const CaseStudyConfig& cfg, int level) {
  return img::level_payload_bytes(cfg.image_width, cfg.image_height, level,
                                  cfg.num_levels);  // 1 byte/pixel
}

}  // namespace

core::TaskSet CaseStudy::task_set() const {
  core::TaskSet set;
  set.reserve(tasks.size());
  for (const auto& t : tasks) set.push_back(t.task);
  return set;
}

sim::RequestProfile CaseStudy::request_profile() const {
  sim::RequestProfile profile(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    profile[i].resize(tasks[i].task.benefit.size());
    for (std::size_t j = 0; j < profile[i].size(); ++j) {
      profile[i][j].payload_bytes = tasks[i].payload_bytes[j];
      profile[i][j].compute_time = tasks[i].gpu_compute[j];
      profile[i][j].stream_id = i;
    }
  }
  return profile;
}

CaseStudy build_case_study(const CaseStudyConfig& config) {
  if (config.num_levels < 2) {
    throw std::invalid_argument("build_case_study: need at least two levels");
  }
  CaseStudy study;
  study.config = config;

  const std::array<img::TaskKind, 4> kinds{
      img::TaskKind::kStereoVision, img::TaskKind::kEdgeDetection,
      img::TaskKind::kObjectRecognition, img::TaskKind::kMotionDetection};

  auto estimation_server = server::make_scenario_server(
      config.estimation_scenario, config.seed ^ 0xE57ull);
  Rng sample_rng(config.seed ^ 0x5A11ull);

  for (std::size_t idx = 0; idx < kinds.size(); ++idx) {
    const img::TaskKind kind = kinds[idx];
    CaseStudyTask cst;
    cst.kind = kind;

    const img::Image scene = scene_for(kind, config.image_width,
                                       config.image_height, config.seed + idx);

    // Quality per level: PSNR of the down-then-up scaled image vs the
    // original (the top level is lossless => the 99 dB cap of Table 1).
    cst.psnr.resize(static_cast<std::size_t>(config.num_levels));
    for (int level = 1; level <= config.num_levels; ++level) {
      cst.psnr[static_cast<std::size_t>(level - 1)] =
          img::psnr(scene, img::round_trip(scene, level, config.num_levels));
    }

    core::Task& task = cst.task;
    task.name = img::to_string(kind);
    task.deadline = (idx < 2) ? config.deadline_12 : config.deadline_34;
    task.period = task.deadline;  // implicit deadlines
    task.weight = 1.0;

    // Local execution: the level-1 image is all the CPU can afford.
    const std::size_t local_pixels = level_pixels(config, 1);
    task.local_wcet = config.exec_model.local_exec(kind, local_pixels);
    task.compensation_wcet = task.local_wcet;  // fallback = local version
    task.post_wcet = Duration::zero();
    task.setup_wcet = config.exec_model.setup_exec(local_pixels);

    // Offload levels 2..num_levels: per-level setup WCETs (C1^j), payloads,
    // GPU compute, and estimated worst-case response times.
    std::vector<core::BenefitPoint> points;
    points.push_back({Duration::zero(), cst.psnr[0]});
    cst.payload_bytes.assign(1, 0);
    cst.gpu_compute.assign(1, Duration::zero());
    std::vector<Duration> setup_per_level{Duration::zero()};
    std::vector<Duration> comp_per_level{Duration::zero()};

    Duration prev_r = Duration::zero();
    for (int level = 2; level <= config.num_levels; ++level) {
      const std::size_t pixels = level_pixels(config, level);
      server::Request probe;
      probe.payload_bytes = pixels;  // 8-bit pixels
      probe.compute_time = config.exec_model.gpu_exec(kind, pixels);
      probe.stream_id = idx;
      // Probe spacing mimics the task period so the estimator sees the
      // load the runtime will see. Each level is profiled against a fresh
      // server timeline (offline measurement campaigns are independent;
      // probes restart at t = 0, so carried-over queue state would be
      // bogus).
      estimation_server->reset();
      const std::vector<Duration> samples = server::collect_response_samples(
          *estimation_server, probe, task.period, config.samples_per_level,
          sample_rng);
      Duration r = server::response_percentile(samples, config.percentile);
      if (r == server::kNoResponse) {
        // Unusable level (the estimator cannot bound it at this percentile):
        // skip it entirely.
        continue;
      }
      if (r <= prev_r) r = prev_r + Duration::microseconds(1);
      prev_r = r;

      points.push_back({r, cst.psnr[static_cast<std::size_t>(level - 1)]});
      cst.payload_bytes.push_back(pixels);
      cst.gpu_compute.push_back(probe.compute_time);
      setup_per_level.push_back(config.exec_model.setup_exec(pixels));
      comp_per_level.push_back(task.local_wcet);
    }

    task.benefit = core::BenefitFunction(std::move(points));
    task.setup_wcet_per_level = std::move(setup_per_level);
    task.compensation_wcet_per_level = std::move(comp_per_level);
    task.validate();
    study.tasks.push_back(std::move(cst));
  }
  return study;
}

std::vector<std::array<double, 4>> weight_permutations() {
  std::array<double, 4> w{1.0, 2.0, 3.0, 4.0};
  std::vector<std::array<double, 4>> out;
  std::sort(w.begin(), w.end());
  do {
    out.push_back(w);
  } while (std::next_permutation(w.begin(), w.end()));
  return out;
}

}  // namespace rt::casestudy
