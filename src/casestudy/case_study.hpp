#pragma once
// The robot image-processing case study (paper Section 6.1).
//
// Four sporadic vision tasks run over camera images. The embedded CPU can
// only afford the smallest scaling level (level 1 of num_levels); the GPU
// server can take any level, and the benefit of offloading at level j is
// the PSNR of the level-j image (Table 1; 99 dB cap at full resolution).
// Estimated worst-case response times per level come from percentile
// estimation over the queueing server model -- the paper's "coarse-grained
// statistic estimation".
//
// This module assembles all of that into a core::TaskSet plus the request
// profile the simulator needs, and is shared by the Table 1 / Figure 2
// benches and the robot_vision example.

#include <array>
#include <cstdint>
#include <vector>

#include "core/task.hpp"
#include "img/exec_model.hpp"
#include "server/gpu_server.hpp"
#include "sim/simulator.hpp"

namespace rt::casestudy {

struct CaseStudyConfig {
  int image_width = 1600;
  int image_height = 1200;
  int num_levels = 5;          ///< level 1 = local size, levels 2..5 offloadable
  double percentile = 90.0;    ///< estimated worst-case response = p90
  std::size_t samples_per_level = 256;
  std::uint64_t seed = 2014;
  /// Environment in which the Benefit & Response Time Estimator measured the
  /// server (the paper measured a shared GPU box on wireless).
  server::Scenario estimation_scenario = server::Scenario::kNotBusy;
  img::ExecTimeModel exec_model = img::ExecTimeModel::calibrated();
  /// Relative deadlines: tau_1/tau_2 1.8s, tau_3/tau_4 2s (Section 6.1.3).
  Duration deadline_12 = Duration::from_ms(1800);
  Duration deadline_34 = Duration::seconds(2);
};

/// One task of the case study with everything the harnesses need.
struct CaseStudyTask {
  img::TaskKind kind;
  core::Task task;  ///< benefit function, per-level WCETs, deadline = period
  /// Per benefit level (index aligned with task.benefit): uplink payload and
  /// pure GPU compute time. Index 0 (local) is zeroed.
  std::vector<std::size_t> payload_bytes;
  std::vector<Duration> gpu_compute;
  /// PSNR of each level (index 0 = the local scaling level).
  std::vector<double> psnr;
};

struct CaseStudy {
  std::vector<CaseStudyTask> tasks;
  CaseStudyConfig config;

  [[nodiscard]] core::TaskSet task_set() const;
  [[nodiscard]] sim::RequestProfile request_profile() const;
};

/// Builds the full case study: generates scenes, measures PSNR per level,
/// derives WCETs from the execution-time model, and estimates per-level
/// response times against the scenario server. Deterministic in the seed.
CaseStudy build_case_study(const CaseStudyConfig& config = {});

/// The 24 permutations of the weights {1, 2, 3, 4} over the four tasks, in
/// lexicographic order ("work sets" of Figure 2).
std::vector<std::array<double, 4>> weight_permutations();

}  // namespace rt::casestudy
