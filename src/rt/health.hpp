#pragma once
// Online server-health monitoring and degraded-mode control.
//
// The ODM solves the offloading selection once, against a response-time
// estimate; when the real component drifts away from that estimate (burst,
// outage, congestion -- see server/faults.hpp for scripting exactly that),
// every offloaded job burns its setup budget C_{i,1} only to fall back to
// compensation. The adaptive loop here closes the gap:
//
//   * HealthMonitor ingests one observation per resolved offload -- did the
//     result make the *normal-mode* response window, and how long did it
//     take -- into fixed-size sliding windows (global + per task) and a
//     per-task latency EWMA. Judging every outcome against the normal
//     vector's window ("shadow timeliness") is what keeps the signal
//     comparable across modes: a fat degraded-mode window that admits a
//     slow response must not read as "the server is healthy again".
//
//   * ModeController turns the monitored rate into a two-state machine
//     (normal <-> degraded) with hysteresis: distinct degrade/recover
//     thresholds, a minimum dwell time in each mode, and a window clear on
//     every switch so each decision rests on post-switch evidence. When the
//     degraded vector generates no offload traffic at all (e.g. all-local),
//     recovery falls back to probing: after the degraded dwell expires with
//     no samples to judge, the controller optimistically re-enters normal
//     mode and lets fresh evidence confirm or re-degrade.
//
// The controller only ever changes mode when the engine asks it to -- at
// job release boundaries (sim/engine.cpp) -- so every in-flight job
// completes under the decision vector it was released with and the per-mode
// Theorem 3 guarantee applies to each job individually (docs/ANALYSIS.md
// §10 discusses the switch-transient envelope).
//
// Single-threaded, like the engine that drives it: batch evaluation gives
// every scenario its own controller (exp::BatchRunner does this from a
// shared ModeControllerConfig prototype).

#include <cstdint>
#include <vector>

#include "core/decision.hpp"
#include "core/task.hpp"
#include "util/time.hpp"

namespace rt::health {

enum class Mode : std::uint8_t { kNormal = 0, kDegraded = 1 };

const char* to_string(Mode mode);

struct HealthConfig {
  /// Sliding-window length in observations, 1..64 (one machine word).
  std::size_t window = 32;
  /// Observations required in the window before its rate is trusted.
  std::size_t min_samples = 8;
  /// Global shadow-timely rate below which normal mode degrades.
  double degrade_below = 0.5;
  /// Rate at or above which degraded mode recovers. Must exceed
  /// degrade_below: the gap is the hysteresis band.
  double recover_above = 0.8;
  /// Weight of the newest latency observation in the per-task EWMA.
  double ewma_alpha = 0.2;
  /// Minimum time in normal mode before a degrade is allowed (also from
  /// run start), and in degraded mode before a recover is allowed. Dwells
  /// bound the switch rate: at most one transition per dwell.
  Duration min_normal_dwell = Duration::milliseconds(500);
  Duration min_degraded_dwell = Duration::seconds(2);

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Sliding-window outcome rates plus per-task response EWMAs. reset() sizes
/// it; record() is O(1) with no allocation.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  /// Clears everything and sizes the per-task state.
  void reset(std::size_t num_tasks);
  /// Drops all windowed outcomes but keeps the latency EWMAs (the latency
  /// scale survives a mode switch; the success evidence does not).
  void clear_window();

  void record(std::size_t task, bool timely, Duration latency);

  [[nodiscard]] std::size_t samples() const { return global_.count; }
  [[nodiscard]] std::size_t samples(std::size_t task) const {
    return per_task_[task].count;
  }
  /// Fraction of windowed observations that were timely; 0 when empty
  /// (gate on samples() before trusting it).
  [[nodiscard]] double timely_rate() const { return global_.rate(); }
  [[nodiscard]] double timely_rate(std::size_t task) const {
    return per_task_[task].rate();
  }
  /// Exponential moving average of observed latencies, in ms; negative
  /// until the task has at least one observation.
  [[nodiscard]] double response_ewma_ms(std::size_t task) const {
    return ewma_ms_[task];
  }

  [[nodiscard]] const HealthConfig& config() const { return config_; }

 private:
  /// Last-N outcomes packed into one word: bit 0 is the newest.
  struct Window {
    std::uint64_t bits = 0;
    std::size_t count = 0;

    void push(bool timely, std::uint64_t mask, std::size_t capacity);
    [[nodiscard]] double rate() const;
    void clear() { bits = 0; count = 0; }
  };

  HealthConfig config_;
  std::uint64_t mask_ = 0;
  Window global_;
  std::vector<Window> per_task_;
  std::vector<double> ewma_ms_;
};

struct ModeControllerConfig {
  HealthConfig health;
  /// Decision vector activated in degraded mode. Empty means all-local;
  /// otherwise it must match the normal vector's arity and should be a
  /// conservative selection (e.g. core::decide_offloading with a large
  /// estimation_error, so its windows absorb the inflated responses).
  core::DecisionVector degraded;
};

class ModeController {
 public:
  explicit ModeController(ModeControllerConfig config = {});

  /// Re-arms the controller for a run over `normal` (the static vector the
  /// engine starts in): captures each task's normal-mode response window
  /// for shadow judging, materializes the degraded vector (all-local when
  /// the config left it empty), and resets all monitor state. Throws when
  /// a non-empty degraded vector's arity mismatches.
  void begin_run(const core::DecisionVector& normal, TimePoint start);

  /// One resolved offload under whichever vector the job was released
  /// with: `timely` is the raw in-window verdict, `latency` the time from
  /// request send to resolution. Shadow semantics are applied here.
  void on_outcome(std::size_t task, bool timely, Duration latency, TimePoint now);

  /// Hysteresis step; the engine calls this at job release boundaries and
  /// applies the returned mode to the job being released.
  Mode evaluate(TimePoint now);

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] const core::DecisionVector& degraded_decisions() const {
    return degraded_;
  }
  [[nodiscard]] const HealthMonitor& monitor() const { return monitor_; }
  [[nodiscard]] std::uint64_t mode_changes() const { return mode_changes_; }

 private:
  void switch_to(Mode mode, TimePoint now);

  ModeControllerConfig config_;
  HealthMonitor monitor_;
  core::DecisionVector degraded_;
  /// Normal-mode response window per task; zero for locally-run tasks.
  std::vector<Duration> normal_response_;
  Mode mode_ = Mode::kNormal;
  TimePoint mode_since_;
  std::uint64_t mode_changes_ = 0;
  bool armed_ = false;
};

/// Conservative cross-mode schedulability envelope: sum over tasks of the
/// *worse* Theorem 3 density between the two vectors. When this is <= 1,
/// even a demand pattern mixing jobs of both modes (the transient around a
/// switch) stays within the linear bound; when it exceeds 1 the per-mode
/// guarantees still hold away from switches, but the transient relies on
/// the dwell-time spacing (docs/ANALYSIS.md §10). Saturated densities
/// (R >= D) clamp to a large finite value.
double switch_envelope_density(const core::TaskSet& tasks,
                               const core::DecisionVector& normal,
                               const core::DecisionVector& degraded);

}  // namespace rt::health
