#include "rt/health.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "core/schedulability.hpp"

namespace rt::health {

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kNormal: return "normal";
    case Mode::kDegraded: return "degraded";
  }
  return "unknown";
}

void HealthConfig::validate() const {
  if (window < 1 || window > 64) {
    throw std::invalid_argument("HealthConfig: window must be in [1, 64]");
  }
  if (min_samples < 1 || min_samples > window) {
    throw std::invalid_argument("HealthConfig: min_samples must be in [1, window]");
  }
  // The comparisons are written to also reject NaN.
  if (!(degrade_below >= 0.0 && degrade_below <= 1.0)) {
    throw std::invalid_argument("HealthConfig: degrade_below outside [0, 1]");
  }
  if (!(recover_above >= 0.0 && recover_above <= 1.0)) {
    throw std::invalid_argument("HealthConfig: recover_above outside [0, 1]");
  }
  if (!(recover_above > degrade_below)) {
    throw std::invalid_argument(
        "HealthConfig: recover_above must exceed degrade_below (hysteresis)");
  }
  if (!(ewma_alpha > 0.0 && ewma_alpha <= 1.0)) {
    throw std::invalid_argument("HealthConfig: ewma_alpha outside (0, 1]");
  }
  if (min_normal_dwell.is_negative() || min_degraded_dwell.is_negative()) {
    throw std::invalid_argument("HealthConfig: negative dwell time");
  }
}

void HealthMonitor::Window::push(bool timely, std::uint64_t mask,
                                 std::size_t capacity) {
  bits = ((bits << 1) | (timely ? 1u : 0u)) & mask;
  if (count < capacity) ++count;
}

double HealthMonitor::Window::rate() const {
  if (count == 0) return 0.0;
  return static_cast<double>(std::popcount(bits)) / static_cast<double>(count);
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {
  config_.validate();
  mask_ = config_.window == 64 ? ~0ull : ((1ull << config_.window) - 1ull);
}

void HealthMonitor::reset(std::size_t num_tasks) {
  global_.clear();
  per_task_.assign(num_tasks, Window{});
  ewma_ms_.assign(num_tasks, -1.0);
}

void HealthMonitor::clear_window() {
  global_.clear();
  for (Window& w : per_task_) w.clear();
}

void HealthMonitor::record(std::size_t task, bool timely, Duration latency) {
  global_.push(timely, mask_, config_.window);
  per_task_[task].push(timely, mask_, config_.window);
  const double ms = latency.ms();
  double& ewma = ewma_ms_[task];
  ewma = ewma < 0.0 ? ms : config_.ewma_alpha * ms + (1.0 - config_.ewma_alpha) * ewma;
}

ModeController::ModeController(ModeControllerConfig config)
    : config_(std::move(config)), monitor_(config_.health) {}

void ModeController::begin_run(const core::DecisionVector& normal,
                               TimePoint start) {
  if (!config_.degraded.empty() && config_.degraded.size() != normal.size()) {
    throw std::invalid_argument(
        "ModeController: degraded vector arity mismatches the normal vector");
  }
  degraded_ = config_.degraded.empty() ? core::all_local(normal.size())
                                       : config_.degraded;
  normal_response_.assign(normal.size(), Duration::zero());
  for (std::size_t i = 0; i < normal.size(); ++i) {
    if (normal[i].offloaded()) normal_response_[i] = normal[i].response_time;
  }
  monitor_.reset(normal.size());
  mode_ = Mode::kNormal;
  mode_since_ = start;
  mode_changes_ = 0;
  armed_ = true;
}

void ModeController::on_outcome(std::size_t task, bool timely, Duration latency,
                                TimePoint /*now*/) {
  if (!armed_ || task >= normal_response_.size()) return;
  const Duration window = normal_response_[task];
  if (window.is_zero()) {
    // Local under the normal vector: its outcomes (possible when the
    // degraded vector offloads more than the normal one) carry no shadow
    // verdict, but the latency still feeds the scale estimate.
    monitor_.record(task, timely, latency);
    return;
  }
  // Shadow timeliness: would this response have met the *normal* window?
  // In degraded mode the active window may be much wider, and a success
  // against that fat window says nothing about recovery.
  const bool shadow = timely && latency <= window;
  monitor_.record(task, shadow, latency);
}

Mode ModeController::evaluate(TimePoint now) {
  if (!armed_) return mode_;
  const HealthConfig& h = config_.health;
  if (mode_ == Mode::kNormal) {
    if (now - mode_since_ < h.min_normal_dwell) return mode_;
    if (monitor_.samples() >= h.min_samples &&
        monitor_.timely_rate() < h.degrade_below) {
      switch_to(Mode::kDegraded, now);
    }
  } else {
    if (now - mode_since_ < h.min_degraded_dwell) return mode_;
    if (monitor_.samples() >= h.min_samples) {
      if (monitor_.timely_rate() >= h.recover_above) switch_to(Mode::kNormal, now);
    } else {
      // Not enough evidence either way -- typical when the degraded vector
      // is all-local and generates no offload traffic. Probe: re-enter
      // normal mode and let the next window's evidence decide.
      switch_to(Mode::kNormal, now);
    }
  }
  return mode_;
}

void ModeController::switch_to(Mode mode, TimePoint now) {
  mode_ = mode;
  mode_since_ = now;
  ++mode_changes_;
  monitor_.clear_window();
}

double switch_envelope_density(const core::TaskSet& tasks,
                               const core::DecisionVector& normal,
                               const core::DecisionVector& degraded) {
  if (tasks.size() != normal.size() || tasks.size() != degraded.size()) {
    throw std::invalid_argument("switch_envelope_density: arity mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double a = core::decision_density(tasks[i], normal[i]).to_double();
    const double b = core::decision_density(tasks[i], degraded[i]).to_double();
    total += std::max(a, b);
  }
  return total;
}

}  // namespace rt::health
