#include "mckp/solvers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/sink.hpp"
#include "obs/timer.hpp"

namespace rt::mckp {

namespace {

/// Minimal-total-weight selection (cheapest item per class); the canonical
/// fallback when no feasible selection exists.
Selection min_weight_selection(const Instance& inst) {
  std::vector<int> pick;
  pick.reserve(inst.classes.size());
  for (const auto& cls : inst.classes) {
    int best = 0;
    for (std::size_t j = 1; j < cls.size(); ++j) {
      const auto& it = cls[j];
      const auto& bi = cls[static_cast<std::size_t>(best)];
      if (it.weight < bi.weight ||
          (it.weight == bi.weight && it.profit > bi.profit)) {
        best = static_cast<int>(j);
      }
    }
    pick.push_back(best);
  }
  return evaluate(inst, std::move(pick));
}

}  // namespace

const char* to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kDpProfits: return "dp-profits";
    case SolverKind::kDpWeights: return "dp-weights";
    case SolverKind::kHeuOe: return "heu-oe";
    case SolverKind::kBruteForce: return "brute-force";
  }
  return "unknown";
}

Selection solve_brute_force(const Instance& inst) {
  inst.validate();
  double space = 1.0;
  for (const auto& cls : inst.classes) space *= static_cast<double>(cls.size());
  if (space > 2e7) {
    throw std::invalid_argument("solve_brute_force: search space too large");
  }
  if (inst.classes.empty()) {
    Selection empty;
    empty.feasible = true;
    return empty;
  }

  const std::size_t m = inst.classes.size();
  std::vector<int> pick(m, 0);
  Selection best;
  best.feasible = false;
  best.profit = -1.0;
  bool found = false;

  for (;;) {
    Selection cur = evaluate(inst, pick);
    if (cur.feasible &&
        (!found || cur.profit > best.profit ||
         (cur.profit == best.profit && cur.weight < best.weight))) {
      best = cur;
      found = true;
    }
    // Odometer increment.
    std::size_t c = 0;
    while (c < m) {
      if (++pick[c] < static_cast<int>(inst.classes[c].size())) break;
      pick[c] = 0;
      ++c;
    }
    if (c == m) break;
  }
  if (!found) return min_weight_selection(inst);
  return best;
}

Selection solve_dp_profits(const Instance& inst, double profit_scale,
                           DpWorkspace* ws, obs::Sink* sink) {
  inst.validate();
  if (!(profit_scale > 0.0)) {
    throw std::invalid_argument("solve_dp_profits: profit_scale must be > 0");
  }
  obs::ScopedTimer solve_timer(
      sink != nullptr ? &sink->registry().histogram("mckp.solve_ns") : nullptr);
  const std::size_t m = inst.classes.size();
  if (m == 0) {
    Selection empty;
    empty.feasible = true;
    return empty;
  }

  thread_local DpWorkspace shared_ws;
  DpWorkspace& w = ws != nullptr ? *ws : shared_ws;

  // Plain-dominance reduction + profit discretization. A dominated item
  // (another item with <= weight and >= profit, one strict) can never
  // improve the DP's final (max fitting profit, min weight) answer, so the
  // DP only visits the undominated subset of each class.
  w.q.clear();
  w.wt.clear();
  w.item_of.clear();
  w.class_begin.assign(1, 0);
  std::int64_t total_q = 0;
  std::int64_t min_weight_sum = 0;
  for (std::size_t c = 0; c < m; ++c) {
    const ReducedClass red = reduce_class(inst.classes[c]);
    std::int64_t qmax = 0;
    for (const int idx : red.undominated) {
      const Item& item = inst.classes[c][static_cast<std::size_t>(idx)];
      const auto v =
          static_cast<std::int64_t>(std::llround(item.profit * profit_scale));
      w.q.push_back(v);
      w.wt.push_back(item.weight);
      w.item_of.push_back(idx);
      qmax = std::max(qmax, v);
    }
    w.class_begin.push_back(w.q.size());
    // undominated.front() is the min-weight item of the class.
    min_weight_sum = add_weight_sat(
        min_weight_sum,
        inst.classes[c][static_cast<std::size_t>(red.undominated.front())].weight);
    total_q += qmax;
  }
  if (sink != nullptr) {
    std::size_t items_total = 0;
    for (const auto& cls : inst.classes) items_total += cls.size();
    auto& reg = sink->registry();
    reg.counter("mckp.solves").inc();
    reg.counter("mckp.items_total").inc(items_total);
    reg.counter("mckp.items_kept").inc(w.q.size());
    reg.histogram("mckp.items_pruned")
        .add(static_cast<std::int64_t>(items_total - w.q.size()));
  }
  if (min_weight_sum > inst.capacity) return min_weight_selection(inst);

  // Truncate the profit axis with the LP relaxation (Dantzig) bound: a
  // feasible selection's true profit is <= ub, so its scaled profit is
  // <= ub*scale + m/2 (each llround adds at most 0.5). Every prefix sum of
  // a feasible selection stays under that cap (profits are >= 0), so DP
  // cells above it can only be reached by provably infeasible selections.
  std::int64_t axis = total_q;
  const double ub = lp_upper_bound(inst);
  // min_weight_sum fits, so the bound is finite; guard anyway against
  // pathological scales before the double -> int64 conversion.
  const double scaled_ub = ub * profit_scale + 0.5 * static_cast<double>(m) + 1.0;
  if (std::isfinite(scaled_ub) && scaled_ub < static_cast<double>(total_q) &&
      scaled_ub < 9e15) {
    axis = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::llround(scaled_ub)));
  }
  if (axis > 50'000'000 ||
      static_cast<double>(axis + 1) * static_cast<double>(m) > 4e8) {
    throw std::invalid_argument(
        "solve_dp_profits: scaled profit space too large; lower profit_scale");
  }

  if (sink != nullptr) {
    sink->registry().histogram("mckp.dp_cells")
        .add((axis + 1) * static_cast<std::int64_t>(m));
  }

  const auto P = static_cast<std::size_t>(axis);
  w.dp.assign(P + 1, kInfWeight);
  w.next.resize(P + 1);
  // choice[c*(P+1) + p]: flat kept-item index picked in class c on the
  // min-weight path reaching scaled profit p after classes 0..c; -1 =
  // unreachable.
  w.choice.assign(m * (P + 1), -1);

  for (std::size_t k = w.class_begin[0]; k < w.class_begin[1]; ++k) {
    if (w.q[k] > axis) continue;  // above the LP cap: infeasible anyway
    const auto p = static_cast<std::size_t>(w.q[k]);
    if (w.wt[k] < w.dp[p]) {
      w.dp[p] = w.wt[k];
      w.choice[p] = static_cast<std::int32_t>(k);
    }
  }

  for (std::size_t c = 1; c < m; ++c) {
    std::fill(w.next.begin(), w.next.end(), kInfWeight);
    std::int32_t* const row = w.choice.data() + c * (P + 1);
    for (std::size_t p = 0; p <= P; ++p) {
      if (w.dp[p] >= kInfWeight) continue;
      for (std::size_t k = w.class_begin[c]; k < w.class_begin[c + 1]; ++k) {
        const std::int64_t tgt64 = static_cast<std::int64_t>(p) + w.q[k];
        if (tgt64 > axis) continue;
        const auto tgt = static_cast<std::size_t>(tgt64);
        const std::int64_t weight = add_weight_sat(w.dp[p], w.wt[k]);
        if (weight < w.next[tgt]) {
          w.next[tgt] = weight;
          row[tgt] = static_cast<std::int32_t>(k);
        }
      }
    }
    w.dp.swap(w.next);
  }

  // Largest scaled profit whose minimal weight fits the capacity.
  std::ptrdiff_t best_p = -1;
  for (std::size_t p = 0; p <= P; ++p) {
    if (w.dp[p] <= inst.capacity) best_p = static_cast<std::ptrdiff_t>(p);
  }
  if (best_p < 0) return min_weight_selection(inst);

  // Reconstruct.
  std::vector<int> pick(m, -1);
  auto p = static_cast<std::size_t>(best_p);
  for (std::size_t c = m; c-- > 0;) {
    const std::int32_t k = w.choice[c * (P + 1) + p];
    if (k < 0) throw std::logic_error("solve_dp_profits: broken DP path");
    pick[c] = w.item_of[static_cast<std::size_t>(k)];
    p -= static_cast<std::size_t>(w.q[static_cast<std::size_t>(k)]);
  }
  return evaluate(inst, std::move(pick));
}

Selection solve_dp_weights(const Instance& inst, std::size_t grid) {
  inst.validate();
  if (grid == 0) throw std::invalid_argument("solve_dp_weights: zero grid");
  const std::size_t m = inst.classes.size();
  if (m == 0) {
    Selection empty;
    empty.feasible = true;
    return empty;
  }
  if (static_cast<double>(grid + 1) * static_cast<double>(m) > 4e8) {
    throw std::invalid_argument("solve_dp_weights: grid too large");
  }

  // Item weight in grid units, rounded UP => any reported-feasible
  // selection is truly feasible.
  const std::int64_t cap = inst.capacity;
  auto to_units = [&](std::int64_t w) -> std::int64_t {
    if (w == 0) return 0;
    if (cap == 0) return static_cast<std::int64_t>(grid) + 1;  // never fits
    const auto g = static_cast<__int128>(grid);
    const __int128 units = (static_cast<__int128>(w) * g + cap - 1) / cap;
    return units > static_cast<__int128>(grid) + 1
               ? static_cast<std::int64_t>(grid) + 1
               : static_cast<std::int64_t>(units);
  };

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> dp(grid + 1, kNegInf);  // dp[u]: max profit, units == u
  std::vector<std::vector<std::int32_t>> choice(
      m, std::vector<std::int32_t>(grid + 1, -1));

  for (std::size_t j = 0; j < inst.classes[0].size(); ++j) {
    const std::int64_t u = to_units(inst.classes[0][j].weight);
    if (u > static_cast<std::int64_t>(grid)) continue;
    const auto uu = static_cast<std::size_t>(u);
    if (inst.classes[0][j].profit > dp[uu]) {
      dp[uu] = inst.classes[0][j].profit;
      choice[0][uu] = static_cast<std::int32_t>(j);
    }
  }

  std::vector<double> next(grid + 1);
  for (std::size_t c = 1; c < m; ++c) {
    std::fill(next.begin(), next.end(), kNegInf);
    for (std::size_t u = 0; u <= grid; ++u) {
      if (dp[u] == kNegInf) continue;
      for (std::size_t j = 0; j < inst.classes[c].size(); ++j) {
        const std::int64_t du = to_units(inst.classes[c][j].weight);
        const std::int64_t tgt = static_cast<std::int64_t>(u) + du;
        if (tgt > static_cast<std::int64_t>(grid)) continue;
        const auto t = static_cast<std::size_t>(tgt);
        const double p = dp[u] + inst.classes[c][j].profit;
        if (p > next[t]) {
          next[t] = p;
          choice[c][t] = static_cast<std::int32_t>(j);
        }
      }
    }
    dp.swap(next);
  }

  std::ptrdiff_t best_u = -1;
  double best_profit = kNegInf;
  for (std::size_t u = 0; u <= grid; ++u) {
    if (dp[u] > best_profit) {
      best_profit = dp[u];
      best_u = static_cast<std::ptrdiff_t>(u);
    }
  }
  if (best_u < 0) return min_weight_selection(inst);

  std::vector<int> pick(m, -1);
  auto u = static_cast<std::size_t>(best_u);
  for (std::size_t c = m; c-- > 0;) {
    const std::int32_t j = choice[c][u];
    if (j < 0) throw std::logic_error("solve_dp_weights: broken DP path");
    pick[c] = j;
    u -= static_cast<std::size_t>(to_units(
        inst.classes[c][static_cast<std::size_t>(j)].weight));
  }
  return evaluate(inst, std::move(pick));
}

namespace {

struct HullStep {
  std::size_t cls;
  std::size_t hull_pos;  // applying moves the class from hull_pos-1 to hull_pos
  std::int64_t dw;
  double dp;
  double efficiency;
};

/// Builds the base selection (cheapest hull item per class) and the list of
/// hull upgrade steps sorted by decreasing efficiency, preserving per-class
/// order on ties.
struct GreedyState {
  std::vector<ReducedClass> reduced;
  Selection base;
  std::vector<HullStep> steps;
};

GreedyState prepare_greedy(const Instance& inst) {
  GreedyState st;
  st.reduced.reserve(inst.classes.size());
  std::vector<int> pick;
  pick.reserve(inst.classes.size());
  for (const auto& cls : inst.classes) {
    st.reduced.push_back(reduce_class(cls));
    pick.push_back(st.reduced.back().hull.front());
  }
  st.base = evaluate(inst, std::move(pick));

  for (std::size_t c = 0; c < inst.classes.size(); ++c) {
    const auto& hull = st.reduced[c].hull;
    for (std::size_t k = 1; k < hull.size(); ++k) {
      const auto& prev = inst.classes[c][static_cast<std::size_t>(hull[k - 1])];
      const auto& cur = inst.classes[c][static_cast<std::size_t>(hull[k])];
      HullStep s;
      s.cls = c;
      s.hull_pos = k;
      s.dw = cur.weight - prev.weight;
      s.dp = cur.profit - prev.profit;
      s.efficiency = s.dp / static_cast<double>(s.dw);
      st.steps.push_back(s);
    }
  }
  std::stable_sort(st.steps.begin(), st.steps.end(),
                   [](const HullStep& a, const HullStep& b) {
                     if (a.efficiency != b.efficiency) {
                       return a.efficiency > b.efficiency;
                     }
                     if (a.cls != b.cls) return a.cls < b.cls;
                     return a.hull_pos < b.hull_pos;
                   });
  return st;
}

}  // namespace

Selection solve_greedy_heu_oe(const Instance& inst) {
  inst.validate();
  if (inst.classes.empty()) {
    Selection empty;
    empty.feasible = true;
    return empty;
  }
  GreedyState st = prepare_greedy(inst);
  if (!st.base.feasible) return st.base;  // even the cheapest picks overflow

  std::vector<std::size_t> pos(inst.classes.size(), 0);
  std::vector<int> pick = st.base.pick;
  std::int64_t weight = st.base.weight;

  // Phase 1: efficiency-ordered hull ascent.
  for (const auto& s : st.steps) {
    if (pos[s.cls] + 1 != s.hull_pos) continue;  // an earlier step was skipped
    if (add_weight_sat(weight, s.dw) > inst.capacity) continue;
    weight += s.dw;
    pos[s.cls] = s.hull_pos;
    pick[s.cls] = st.reduced[s.cls].hull[s.hull_pos];
  }

  // Phase 2 ("OE" residual pass): keep applying the best single-class swap
  // to any undominated item (not only hull items) that still fits. Profit
  // strictly increases each round, so this terminates.
  bool improved = true;
  while (improved) {
    improved = false;
    double best_gain = 0.0;
    std::size_t best_cls = 0;
    int best_item = -1;
    std::int64_t best_dw = 0;
    for (std::size_t c = 0; c < inst.classes.size(); ++c) {
      const auto& cur = inst.classes[c][static_cast<std::size_t>(pick[c])];
      for (const int j : st.reduced[c].undominated) {
        const auto& cand = inst.classes[c][static_cast<std::size_t>(j)];
        const double gain = cand.profit - cur.profit;
        if (gain <= best_gain) continue;
        const std::int64_t dw = cand.weight - cur.weight;
        if (dw > 0 && weight + dw > inst.capacity) continue;
        best_gain = gain;
        best_cls = c;
        best_item = j;
        best_dw = dw;
      }
    }
    if (best_item >= 0) {
      pick[best_cls] = best_item;
      weight += best_dw;
      improved = true;
    }
  }
  return evaluate(inst, std::move(pick));
}

double lp_upper_bound(const Instance& inst) {
  inst.validate();
  if (inst.classes.empty()) return 0.0;
  GreedyState st = prepare_greedy(inst);
  if (!st.base.feasible) return -std::numeric_limits<double>::infinity();

  std::vector<std::size_t> pos(inst.classes.size(), 0);
  double profit = st.base.profit;
  std::int64_t remaining = inst.capacity - st.base.weight;
  for (const auto& s : st.steps) {
    if (pos[s.cls] + 1 != s.hull_pos) continue;
    if (s.dw <= remaining) {
      remaining -= s.dw;
      profit += s.dp;
      pos[s.cls] = s.hull_pos;
    } else {
      // First non-fitting step taken fractionally: Dantzig bound.
      profit += s.efficiency * static_cast<double>(remaining);
      return profit;
    }
  }
  return profit;
}

Selection solve(const Instance& inst, SolverKind kind, double profit_scale,
                DpWorkspace* ws, obs::Sink* sink) {
  switch (kind) {
    case SolverKind::kDpProfits:
      return solve_dp_profits(inst, profit_scale, ws, sink);
    case SolverKind::kDpWeights: return solve_dp_weights(inst);
    case SolverKind::kHeuOe: return solve_greedy_heu_oe(inst);
    case SolverKind::kBruteForce: return solve_brute_force(inst);
  }
  throw std::invalid_argument("solve: unknown solver kind");
}

}  // namespace rt::mckp
