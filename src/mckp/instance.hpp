#pragma once
// Multiple-Choice Knapsack Problem (MCKP) instance model.
//
// The Offloading Decision Manager (paper Section 5.2, Eq. (5)) reduces the
// selection of estimated worst-case response times to MCKP: one class per
// task, one item per discrete point of the benefit function; exactly one
// item must be chosen per class, total weight bounded by the capacity.
//
// This library is deliberately self-contained: weights are plain int64
// (the caller scales utilizations into fixed-point ticks, keeping the
// capacity comparison exact), profits are doubles.

#include <cstdint>
#include <string>
#include <vector>

namespace rt::mckp {

struct Item {
  std::int64_t weight = 0;  ///< resource consumption; must be >= 0
  double profit = 0.0;      ///< benefit; must be >= 0 and finite
};

/// An MCKP instance. classes[c] lists the mutually exclusive choices of
/// class c; exactly one must be selected.
struct Instance {
  std::vector<std::vector<Item>> classes;
  std::int64_t capacity = 0;

  [[nodiscard]] std::size_t num_classes() const { return classes.size(); }
  [[nodiscard]] std::size_t total_items() const;

  /// Throws std::invalid_argument on structural problems (empty class,
  /// negative weight/profit, non-finite profit, negative capacity).
  void validate() const;
};

/// A (candidate) solution: pick[c] indexes into classes[c].
struct Selection {
  std::vector<int> pick;
  double profit = 0.0;
  std::int64_t weight = 0;
  bool feasible = false;  ///< true iff weight <= capacity and pick complete

  [[nodiscard]] std::string to_string() const;
};

/// Recomputes profit/weight/feasible for `pick` against `inst`.
/// Throws std::out_of_range for malformed picks.
Selection evaluate(const Instance& inst, std::vector<int> pick);

/// Per-class preprocessing used by the greedy/LP solvers.
///
/// An item k dominates item j when weight_k <= weight_j and
/// profit_k >= profit_j (with at least one strict); dominated items can
/// never appear in an optimal solution. LP-dominated items lie under the
/// upper convex hull of the (weight, profit) point set and can be skipped
/// by the greedy ascent (but NOT by exact solvers).
struct ReducedClass {
  /// Indices into the original class, sorted by increasing weight, forming
  /// the upper convex hull (strictly increasing weight and profit,
  /// decreasing incremental efficiency).
  std::vector<int> hull;
  /// Indices of items that survive plain dominance (superset of hull).
  std::vector<int> undominated;
};

/// Computes dominance/hull structure for one class. The class must be
/// non-empty.
ReducedClass reduce_class(const std::vector<Item>& cls);

/// Saturating non-negative weight addition (no wraparound on huge weights).
std::int64_t add_weight_sat(std::int64_t a, std::int64_t b);

/// Sentinel for "unreachable" in the DP tables; larger than any valid sum.
inline constexpr std::int64_t kInfWeight = INT64_MAX / 4;

}  // namespace rt::mckp
