#pragma once
// Exact branch-and-bound MCKP solver.
//
// The Dudzinski-Walukiewicz DP is exact only up to profit discretization;
// this solver is exact on real-valued profits: depth-first search over
// classes (largest profit spread first), pruned by the Dantzig LP bound on
// the remaining suffix. Intended for offline verification and for
// instances whose profits do not quantize well.

#include "mckp/instance.hpp"

namespace rt::mckp {

struct BranchBoundStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t nodes_pruned = 0;
};

/// Exact optimum. Throws std::invalid_argument on malformed instances and
/// std::runtime_error when the node budget (default ~20M) is exhausted --
/// which signals a pathological instance, not a wrong answer.
Selection solve_branch_bound(const Instance& inst, BranchBoundStats* stats = nullptr,
                             std::uint64_t node_budget = 20'000'000);

}  // namespace rt::mckp
