#pragma once
// MCKP solvers.
//
// The paper (Section 5.2) solves the offloading-selection MCKP with
//  (1) the pseudo-polynomial dynamic programming algorithm of
//      Dudzinski & Walukiewicz [5] -- implemented here as DP over profits
//      (minimal weight per achievable profit), which keeps the capacity
//      comparison exact because weights are never discretized; and
//  (2) the HEU-OE heuristic from Khan's thesis [6] -- implemented as the
//      classical convex-hull incremental-efficiency greedy with a residual
//      upgrade pass (see DESIGN.md for the substitution note).
// A brute-force solver (test oracle), a capacity-grid DP variant, and an
// LP-relaxation upper bound complete the family.

#include "mckp/instance.hpp"

namespace rt::obs {
class Sink;
}  // namespace rt::obs

namespace rt::mckp {

enum class SolverKind {
  kDpProfits,   ///< Dudzinski-Walukiewicz DP (exact up to profit rounding)
  kDpWeights,   ///< DP over a capacity grid (weights rounded UP: sound)
  kHeuOe,       ///< greedy heuristic (feasible, near-optimal)
  kBruteForce,  ///< exact enumeration (tiny instances only)
};

const char* to_string(SolverKind kind);

/// Default profit discretization for the profit DP (benefit units per 1.0
/// of G). The single source of truth: core::OdmConfig and the solver
/// defaults below both reference this constant so they cannot drift.
inline constexpr double kDefaultProfitScale = 1000.0;

/// Reusable scratch space for solve_dp_profits. The profit DP needs a
/// (P+1)-entry weight table plus an m x (P+1) reconstruction table -- at
/// paper scale that is megabytes, so the online ODM path (admission
/// control, mode changes) reuses one workspace across calls instead of
/// reallocating. A workspace serves one thread at a time; passing nullptr
/// uses a per-thread (thread_local) workspace, which makes the plain call
/// both allocation-free after warm-up and thread-safe. Contents are
/// opaque scratch: valid only during a solve.
struct DpWorkspace {
  std::vector<std::int64_t> dp;      ///< min weight per scaled profit
  std::vector<std::int64_t> next;    ///< double buffer for dp
  std::vector<std::int32_t> choice;  ///< flat m x (P+1) reconstruction table
  std::vector<std::int64_t> q;       ///< scaled profits of kept items, flat
  std::vector<std::int64_t> wt;      ///< weights of kept items, flat
  std::vector<std::int32_t> item_of; ///< original item index per kept item
  std::vector<std::size_t> class_begin;  ///< m+1 offsets into q/wt/item_of
};

/// Exact enumeration. Complexity is the product of class sizes; intended as
/// a test oracle for small instances. Throws std::invalid_argument when the
/// search space exceeds ~20M combinations.
Selection solve_brute_force(const Instance& inst);

/// Dudzinski-Walukiewicz dynamic program over profits.
///
/// Profits are discretized as round(profit * profit_scale); the DP computes,
/// for every reachable integer total profit, the minimal total weight, then
/// returns the largest profit whose minimal weight fits the capacity.
/// The result is optimal with respect to the discretized profits (exact when
/// all profit*profit_scale are integral). Weights stay exact int64
/// throughout. Memory/time: O(num_classes * total_scaled_profit).
///
/// Returns feasible=false iff even the minimal-weight selection exceeds the
/// capacity (no valid assignment of one item per class fits).
///
/// Fast paths (transparent to the result): plain-dominance reduction
/// shrinks every class to its undominated items before the DP (safe for
/// exact solvers, unlike the hull), and the profit axis is truncated at
/// the LP relaxation upper bound plus rounding slack, so the table never
/// grows past the achievable profit. `ws` supplies reusable buffers;
/// nullptr selects a thread_local workspace.
///
/// A non-null `sink` records per-solve telemetry (docs/ANALYSIS.md §8):
/// mckp.solves / items_total / items_kept counters, the items-pruned and
/// dp-cells histograms, and a solve wall-time histogram. The decision is
/// a pure function of (inst, profit_scale) either way; telemetry never
/// alters the result.
Selection solve_dp_profits(const Instance& inst,
                           double profit_scale = kDefaultProfitScale,
                           DpWorkspace* ws = nullptr,
                           obs::Sink* sink = nullptr);

/// DP over a discretized capacity axis with `grid` cells. Item weights are
/// rounded UP to the grid, so any selection reported feasible is truly
/// feasible (sound), but near-boundary selections may be missed
/// (incomplete). Useful as a fast approximation and as an ablation of the
/// profit-DP design choice.
Selection solve_dp_weights(const Instance& inst, std::size_t grid = 10000);

/// HEU-OE style greedy: start from the minimal-weight item of each class,
/// then apply convex-hull upgrade steps in order of decreasing incremental
/// efficiency while they fit; finish with a residual pass that applies any
/// remaining single-class upgrade (not only hull steps) that still fits.
Selection solve_greedy_heu_oe(const Instance& inst);

/// Upper bound from the LP relaxation (Dantzig-style on the hulls): greedy
/// ascent value plus the fractional part of the first non-fitting hull step.
/// Any feasible selection's profit is <= this bound.
double lp_upper_bound(const Instance& inst);

/// Dispatch helper. `ws` and `sink` are forwarded to solve_dp_profits for
/// kDpProfits (other solvers ignore them).
Selection solve(const Instance& inst, SolverKind kind,
                double profit_scale = kDefaultProfitScale,
                DpWorkspace* ws = nullptr, obs::Sink* sink = nullptr);

}  // namespace rt::mckp
