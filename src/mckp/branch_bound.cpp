#include "mckp/branch_bound.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rt::mckp {

namespace {

struct ClassView {
  int original_index = 0;
  /// Undominated items sorted by weight ascending (profit ascending too).
  std::vector<int> items;
  /// Cheapest weight and best profit in the class (suffix bound helpers).
  std::int64_t min_weight = 0;
  double max_profit = 0.0;
  double min_weight_profit = 0.0;  ///< profit of the cheapest choice
};

class Solver {
 public:
  Solver(const Instance& inst, std::uint64_t node_budget)
      : inst_(inst), node_budget_(node_budget) {}

  Selection run(BranchBoundStats* stats) {
    const std::size_t m = inst_.classes.size();
    views_.reserve(m);
    for (std::size_t c = 0; c < m; ++c) {
      ClassView v;
      v.original_index = static_cast<int>(c);
      const ReducedClass red = reduce_class(inst_.classes[c]);
      v.items = red.undominated;  // weight asc, profit asc
      v.min_weight = inst_.classes[c][static_cast<std::size_t>(v.items.front())].weight;
      v.min_weight_profit =
          inst_.classes[c][static_cast<std::size_t>(v.items.front())].profit;
      v.max_profit =
          inst_.classes[c][static_cast<std::size_t>(v.items.back())].profit;
      views_.push_back(std::move(v));
    }
    // Branch on the widest profit spread first: decisions there move the
    // bound the most.
    std::stable_sort(views_.begin(), views_.end(),
                     [](const ClassView& a, const ClassView& b) {
                       return (a.max_profit - a.min_weight_profit) >
                              (b.max_profit - b.min_weight_profit);
                     });

    // Suffix aggregates for pruning.
    suffix_min_weight_.assign(m + 1, 0);
    suffix_max_profit_.assign(m + 1, 0.0);
    for (std::size_t c = m; c-- > 0;) {
      suffix_min_weight_[c] =
          add_weight_sat(suffix_min_weight_[c + 1], views_[c].min_weight);
      suffix_max_profit_[c] = suffix_max_profit_[c + 1] + views_[c].max_profit;
    }

    // Incumbent: the minimal-weight selection if feasible.
    pick_.assign(m, -1);
    best_profit_ = -std::numeric_limits<double>::infinity();
    best_pick_.assign(m, -1);
    if (suffix_min_weight_[0] <= inst_.capacity) {
      for (std::size_t c = 0; c < m; ++c) best_pick_[c] = views_[c].items.front();
      double p = 0.0;
      for (std::size_t c = 0; c < m; ++c) p += views_[c].min_weight_profit;
      best_profit_ = p;
      found_ = true;
    }

    dfs(0, 0, 0.0);

    if (stats != nullptr) {
      stats->nodes_visited = nodes_;
      stats->nodes_pruned = pruned_;
    }
    if (!found_) {
      // No feasible assignment at all: report the cheapest one.
      std::vector<int> fallback(m, 0);
      for (std::size_t c = 0; c < m; ++c) {
        fallback[static_cast<std::size_t>(views_[c].original_index)] =
            views_[c].items.front();
      }
      return evaluate(inst_, std::move(fallback));
    }
    std::vector<int> out(m, 0);
    for (std::size_t c = 0; c < m; ++c) {
      out[static_cast<std::size_t>(views_[c].original_index)] = best_pick_[c];
    }
    return evaluate(inst_, std::move(out));
  }

 private:
  void dfs(std::size_t c, std::int64_t weight, double profit) {
    if (++nodes_ > node_budget_) {
      throw std::runtime_error("solve_branch_bound: node budget exhausted");
    }
    if (c == views_.size()) {
      if (profit > best_profit_) {
        best_profit_ = profit;
        best_pick_ = pick_;
        found_ = true;
      }
      return;
    }
    // Prune: even the perfect suffix cannot beat the incumbent, or even the
    // cheapest suffix does not fit.
    if (profit + suffix_max_profit_[c] <= best_profit_ + kEps) {
      ++pruned_;
      return;
    }
    if (add_weight_sat(weight, suffix_min_weight_[c]) > inst_.capacity) {
      ++pruned_;
      return;
    }
    const auto& cls = inst_.classes[static_cast<std::size_t>(views_[c].original_index)];
    // Most profitable first: good incumbents early, stronger pruning later.
    const auto& items = views_[c].items;
    for (std::size_t k = items.size(); k-- > 0;) {
      const int j = items[k];
      const Item& item = cls[static_cast<std::size_t>(j)];
      const std::int64_t w = add_weight_sat(weight, item.weight);
      if (w > inst_.capacity) continue;  // items sorted by weight: keep trying lighter
      pick_[c] = j;
      dfs(c + 1, w, profit + item.profit);
    }
    pick_[c] = -1;
  }

  static constexpr double kEps = 1e-12;

  const Instance& inst_;
  std::uint64_t node_budget_;
  std::vector<ClassView> views_;
  std::vector<std::int64_t> suffix_min_weight_;
  std::vector<double> suffix_max_profit_;
  std::vector<int> pick_;
  std::vector<int> best_pick_;
  double best_profit_ = 0.0;
  bool found_ = false;
  std::uint64_t nodes_ = 0;
  std::uint64_t pruned_ = 0;
};

}  // namespace

Selection solve_branch_bound(const Instance& inst, BranchBoundStats* stats,
                             std::uint64_t node_budget) {
  inst.validate();
  if (inst.classes.empty()) {
    Selection empty;
    empty.feasible = true;
    return empty;
  }
  Solver solver(inst, node_budget);
  return solver.run(stats);
}

}  // namespace rt::mckp
