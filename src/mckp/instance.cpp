#include "mckp/instance.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rt::mckp {

std::size_t Instance::total_items() const {
  std::size_t n = 0;
  for (const auto& cls : classes) n += cls.size();
  return n;
}

void Instance::validate() const {
  if (capacity < 0) throw std::invalid_argument("MCKP: negative capacity");
  for (std::size_t c = 0; c < classes.size(); ++c) {
    if (classes[c].empty()) {
      throw std::invalid_argument("MCKP: class " + std::to_string(c) + " is empty");
    }
    for (const auto& item : classes[c]) {
      if (item.weight < 0) throw std::invalid_argument("MCKP: negative weight");
      if (item.weight >= kInfWeight) throw std::invalid_argument("MCKP: weight too large");
      if (!(item.profit >= 0.0) || !std::isfinite(item.profit)) {
        throw std::invalid_argument("MCKP: profit must be finite and >= 0");
      }
    }
  }
}

std::string Selection::to_string() const {
  std::ostringstream oss;
  oss << (feasible ? "feasible" : "INFEASIBLE") << " profit=" << profit
      << " weight=" << weight << " picks=[";
  for (std::size_t i = 0; i < pick.size(); ++i) {
    if (i) oss << ',';
    oss << pick[i];
  }
  oss << ']';
  return oss.str();
}

Selection evaluate(const Instance& inst, std::vector<int> pick) {
  if (pick.size() != inst.classes.size()) {
    throw std::out_of_range("MCKP: pick arity mismatch");
  }
  Selection sel;
  sel.pick = std::move(pick);
  for (std::size_t c = 0; c < inst.classes.size(); ++c) {
    const int j = sel.pick[c];
    if (j < 0 || static_cast<std::size_t>(j) >= inst.classes[c].size()) {
      throw std::out_of_range("MCKP: pick index out of range");
    }
    const Item& item = inst.classes[c][static_cast<std::size_t>(j)];
    sel.weight = add_weight_sat(sel.weight, item.weight);
    sel.profit += item.profit;
  }
  sel.feasible = sel.weight <= inst.capacity;
  return sel;
}

std::int64_t add_weight_sat(std::int64_t a, std::int64_t b) {
  if (a >= kInfWeight || b >= kInfWeight || a > kInfWeight - b) return kInfWeight;
  return a + b;
}

ReducedClass reduce_class(const std::vector<Item>& cls) {
  if (cls.empty()) throw std::invalid_argument("reduce_class: empty class");

  // Sort indices by (weight asc, profit desc): the best item at each weight
  // comes first.
  std::vector<int> order(cls.size());
  for (std::size_t i = 0; i < cls.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ia = cls[static_cast<std::size_t>(a)];
    const auto& ib = cls[static_cast<std::size_t>(b)];
    if (ia.weight != ib.weight) return ia.weight < ib.weight;
    if (ia.profit != ib.profit) return ia.profit > ib.profit;
    return a < b;
  });

  ReducedClass out;
  // Plain dominance sweep: keep items with strictly increasing profit.
  double best_profit = -1.0;
  for (const int idx : order) {
    const auto& item = cls[static_cast<std::size_t>(idx)];
    if (item.profit > best_profit) {
      out.undominated.push_back(idx);
      best_profit = item.profit;
    }
  }

  // Upper convex hull over the undominated chain (Graham-scan style):
  // pop while the middle point lies below the segment of its neighbours,
  // i.e. while incremental efficiencies are non-decreasing.
  auto& hull = out.hull;
  for (const int idx : out.undominated) {
    const auto& p = cls[static_cast<std::size_t>(idx)];
    while (hull.size() >= 2) {
      const auto& a = cls[static_cast<std::size_t>(hull[hull.size() - 2])];
      const auto& b = cls[static_cast<std::size_t>(hull.back())];
      // Efficiency of a->b must exceed efficiency of b->p, i.e.
      // (b.p-a.p)/(b.w-a.w) > (p.p-b.p)/(p.w-b.w); cross-multiplied to
      // avoid division (weights strictly increase along the chain).
      const double lhs = (b.profit - a.profit) * static_cast<double>(p.weight - b.weight);
      const double rhs = (p.profit - b.profit) * static_cast<double>(b.weight - a.weight);
      if (lhs > rhs) break;
      hull.pop_back();
    }
    hull.push_back(idx);
  }
  return out;
}

}  // namespace rt::mckp
