#include "img/vision.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rt::img {

Image stereo_disparity(const Image& left, const Image& right, int max_disparity,
                       int block_radius) {
  if (left.width() != right.width() || left.height() != right.height()) {
    throw std::invalid_argument("stereo_disparity: dimension mismatch");
  }
  if (max_disparity < 1) {
    throw std::invalid_argument("stereo_disparity: max_disparity must be >= 1");
  }
  if (block_radius < 0) {
    throw std::invalid_argument("stereo_disparity: negative block radius");
  }
  Image out(left.width(), left.height());
  for (int y = 0; y < left.height(); ++y) {
    for (int x = 0; x < left.width(); ++x) {
      float best_sad = std::numeric_limits<float>::max();
      int best_d = 0;
      for (int d = 0; d <= max_disparity; ++d) {
        float sad = 0.0f;
        for (int by = -block_radius; by <= block_radius; ++by) {
          for (int bx = -block_radius; bx <= block_radius; ++bx) {
            sad += std::fabs(left.at_clamped(x + bx, y + by) -
                             right.at_clamped(x + bx - d, y + by));
          }
        }
        if (sad < best_sad) {
          best_sad = sad;
          best_d = d;
        }
      }
      out.at(x, y) = static_cast<float>(best_d) / static_cast<float>(max_disparity);
    }
  }
  return out;
}

Image edge_detect(const Image& src, float thresh) {
  return threshold(sobel_magnitude(gaussian_blur5(src)), thresh);
}

MatchResult match_template(const Image& scene, const Image& templ) {
  if (templ.empty() || scene.empty()) {
    throw std::invalid_argument("match_template: empty image");
  }
  if (templ.width() > scene.width() || templ.height() > scene.height()) {
    throw std::invalid_argument("match_template: template larger than scene");
  }
  const int tw = templ.width();
  const int th = templ.height();
  const double tn = static_cast<double>(tw) * th;

  double t_mean = templ.mean();
  double t_var = 0.0;
  for (const float p : templ.data()) {
    const double d = p - t_mean;
    t_var += d * d;
  }

  MatchResult best;
  best.score = -2.0;
  for (int y = 0; y + th <= scene.height(); ++y) {
    for (int x = 0; x + tw <= scene.width(); ++x) {
      double s_sum = 0.0, s_sq = 0.0, cross = 0.0;
      for (int ty = 0; ty < th; ++ty) {
        for (int tx = 0; tx < tw; ++tx) {
          const double s = scene.at(x + tx, y + ty);
          const double t = templ.at(tx, ty);
          s_sum += s;
          s_sq += s * s;
          cross += s * t;
        }
      }
      const double s_mean = s_sum / tn;
      const double s_var = s_sq - s_sum * s_mean;
      const double numer = cross - s_sum * t_mean;
      const double denom = std::sqrt(std::max(s_var, 0.0) * t_var);
      const double score = denom > 1e-12 ? numer / denom : 0.0;
      if (score > best.score) {
        best.score = score;
        best.x = x;
        best.y = y;
      }
    }
  }
  return best;
}

MotionResult detect_motion(const Image& frame0, const Image& frame1, float thresh) {
  MotionResult res;
  res.mask = threshold(abs_diff(frame0, frame1), thresh);
  double changed = 0.0;
  for (const float p : res.mask.data()) changed += p;
  res.changed_ratio =
      res.mask.size() ? changed / static_cast<double>(res.mask.size()) : 0.0;
  return res;
}

}  // namespace rt::img
