#pragma once
// Image quality metrics.
//
// Table 1 of the paper uses PSNR as the quantitative benefit value and caps
// the full-resolution (identical-image) case at 99 dB -- we reproduce both
// conventions.

#include "img/image.hpp"

namespace rt::img {

/// PSNR cap used by the paper for lossless (identical) images.
inline constexpr double kPsnrCap = 99.0;

/// Mean squared error; throws std::invalid_argument on dimension mismatch
/// or empty images.
double mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB for unit dynamic range, clamped to
/// kPsnrCap (identical images would otherwise be +inf).
double psnr(const Image& a, const Image& b);

/// Structural similarity (global statistics variant, not windowed):
/// in [-1, 1], 1 for identical images. Included as a secondary metric.
double ssim_global(const Image& a, const Image& b);

}  // namespace rt::img
