#include "img/filter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rt::img {

Image convolve3x3(const Image& src, const std::array<float, 9>& kernel) {
  if (src.empty()) throw std::invalid_argument("convolve3x3: empty image");
  Image out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      float acc = 0.0f;
      for (int ky = -1; ky <= 1; ++ky) {
        for (int kx = -1; kx <= 1; ++kx) {
          acc += kernel[static_cast<std::size_t>((ky + 1) * 3 + (kx + 1))] *
                 src.at_clamped(x + kx, y + ky);
        }
      }
      out.at(x, y) = acc;
    }
  }
  return out;
}

Image gaussian_blur5(const Image& src) {
  if (src.empty()) throw std::invalid_argument("gaussian_blur5: empty image");
  // Binomial [1 4 6 4 1]/16, horizontal then vertical.
  constexpr float k[5] = {1.0f / 16, 4.0f / 16, 6.0f / 16, 4.0f / 16, 1.0f / 16};
  Image tmp(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      float acc = 0.0f;
      for (int i = -2; i <= 2; ++i) acc += k[i + 2] * src.at_clamped(x + i, y);
      tmp.at(x, y) = acc;
    }
  }
  Image out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      float acc = 0.0f;
      for (int i = -2; i <= 2; ++i) acc += k[i + 2] * tmp.at_clamped(x, y + i);
      out.at(x, y) = acc;
    }
  }
  return out;
}

Image sobel_magnitude(const Image& src) {
  if (src.empty()) throw std::invalid_argument("sobel_magnitude: empty image");
  Image out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      const float gx = -src.at_clamped(x - 1, y - 1) - 2.0f * src.at_clamped(x - 1, y) -
                       src.at_clamped(x - 1, y + 1) + src.at_clamped(x + 1, y - 1) +
                       2.0f * src.at_clamped(x + 1, y) + src.at_clamped(x + 1, y + 1);
      const float gy = -src.at_clamped(x - 1, y - 1) - 2.0f * src.at_clamped(x, y - 1) -
                       src.at_clamped(x + 1, y - 1) + src.at_clamped(x - 1, y + 1) +
                       2.0f * src.at_clamped(x, y + 1) + src.at_clamped(x + 1, y + 1);
      // Max |gx| + |gy| is 8 for unit-range input; normalize into [0, 1].
      out.at(x, y) = std::min(1.0f, std::sqrt(gx * gx + gy * gy) / 4.0f);
    }
  }
  return out;
}

Image threshold(const Image& src, float thresh) {
  Image out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      out.at(x, y) = src.at(x, y) >= thresh ? 1.0f : 0.0f;
    }
  }
  return out;
}

Image abs_diff(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("abs_diff: dimension mismatch");
  }
  Image out(a.width(), a.height());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    out.data()[i] = std::fabs(a.data()[i] - b.data()[i]);
  }
  return out;
}

}  // namespace rt::img
