#pragma once
// Grayscale image substrate for the case-study workloads.
//
// The paper's case study measures the benefit of offloading as the PSNR of
// scaled camera images (Table 1). We have no camera, so scenes are
// generated deterministically (seeded) with enough structure -- gradients,
// blocks, discs, texture -- that scaling genuinely loses information and
// PSNR behaves like it does on natural images.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rt::img {

/// Grayscale image, float pixels in [0, 1], row-major.
class Image {
 public:
  Image() = default;
  Image(int width, int height, float fill = 0.0f);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t size() const { return pixels_.size(); }
  [[nodiscard]] bool empty() const { return pixels_.empty(); }

  [[nodiscard]] float& at(int x, int y);
  [[nodiscard]] float at(int x, int y) const;
  /// Clamped access: coordinates outside the image are clamped to the edge.
  [[nodiscard]] float at_clamped(int x, int y) const;
  /// Bilinear sample at fractional coordinates (clamped).
  [[nodiscard]] float sample_bilinear(float x, float y) const;

  [[nodiscard]] const std::vector<float>& data() const { return pixels_; }
  [[nodiscard]] std::vector<float>& data() { return pixels_; }

  /// Clamps every pixel into [0, 1].
  void clamp01();

  /// Mean pixel value (0 for an empty image).
  [[nodiscard]] double mean() const;

  /// Serializes to binary PGM (P5, 8-bit); throws std::runtime_error on IO
  /// failure. Handy for eyeballing benchmark inputs.
  void save_pgm(const std::string& path) const;

  /// Loads a binary PGM (P5, maxval <= 255, '#' comments allowed); throws
  /// std::runtime_error on IO or format errors.
  static Image load_pgm(const std::string& path);

  bool operator==(const Image& o) const = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> pixels_;
};

/// Parameters of the deterministic synthetic scene generator.
struct SceneSpec {
  std::uint64_t seed = 1;
  int num_rectangles = 6;
  int num_discs = 5;
  double texture_amplitude = 0.06;  ///< high-frequency detail, the part scaling destroys
  double gradient_strength = 0.5;
};

/// Generates a synthetic "camera" scene: smooth gradient background,
/// randomly placed rectangles/discs of varying intensity, plus value
/// texture. Deterministic in (spec.seed, w, h).
Image make_scene(int width, int height, const SceneSpec& spec = {});

/// Stereo pair: `right` is `left` with foreground objects shifted by a
/// disparity that decreases with object "depth"; returns {left, right}.
struct StereoPair {
  Image left;
  Image right;
  int max_disparity;  ///< largest shift applied, in pixels
};
StereoPair make_stereo_pair(int width, int height, std::uint64_t seed,
                            int max_disparity = 12);

/// Motion pair: second frame has a subset of objects translated; returns
/// the frames and the number of moved objects.
struct MotionPair {
  Image frame0;
  Image frame1;
  int moved_objects;
};
MotionPair make_motion_pair(int width, int height, std::uint64_t seed,
                            int moved_objects = 3, int shift = 4);

/// Cuts the patch at (x, y) with the given size (clamped to bounds).
Image crop(const Image& src, int x, int y, int w, int h);

}  // namespace rt::img
