#include "img/exec_model.hpp"

#include <cmath>
#include <stdexcept>

namespace rt::img {

const char* to_string(TaskKind kind) {
  switch (kind) {
    case TaskKind::kStereoVision: return "Stereo Vision";
    case TaskKind::kEdgeDetection: return "Edge Detection";
    case TaskKind::kObjectRecognition: return "Object recognition";
    case TaskKind::kMotionDetection: return "Motion Detection";
  }
  return "unknown";
}

double task_cost_factor(TaskKind kind) {
  switch (kind) {
    case TaskKind::kStereoVision: return 1.25;       // block search over disparities
    case TaskKind::kEdgeDetection: return 0.45;      // a couple of convolutions
    case TaskKind::kObjectRecognition: return 1.0;   // SIFT-like reference
    case TaskKind::kMotionDetection: return 0.30;    // frame diff + stats
  }
  throw std::invalid_argument("task_cost_factor: unknown kind");
}

namespace {
rt::Duration scaled(double ns_per_pixel, double factor, std::size_t pixels,
                    rt::Duration fixed) {
  const double ns = ns_per_pixel * factor * static_cast<double>(pixels);
  return fixed + rt::Duration::nanoseconds(static_cast<std::int64_t>(std::llround(ns)));
}
}  // namespace

rt::Duration ExecTimeModel::local_exec(TaskKind kind, std::size_t pixels) const {
  return scaled(cpu_ns_per_pixel, task_cost_factor(kind), pixels, cpu_fixed);
}

rt::Duration ExecTimeModel::gpu_exec(TaskKind kind, std::size_t pixels) const {
  return scaled(gpu_ns_per_pixel, task_cost_factor(kind), pixels, gpu_fixed);
}

rt::Duration ExecTimeModel::setup_exec(std::size_t payload_pixels) const {
  return scaled(setup_ns_per_pixel, 1.0, payload_pixels, setup_fixed);
}

}  // namespace rt::img
