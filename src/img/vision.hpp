#pragma once
// The four case-study vision workloads (paper Section 6.1): stereo vision,
// edge detection, object recognition, motion detection. These are real
// (scalar CPU) implementations -- the paper ran CUDA kernels on a Tesla
// M2050; here only the *results* and *relative costs* matter, so faithful
// classic algorithms suffice (see DESIGN.md substitution table).

#include "img/filter.hpp"
#include "img/image.hpp"

namespace rt::img {

/// Block-matching stereo: per-pixel disparity in [0, max_disparity] via SAD
/// over (2*block_radius+1)^2 windows, searching leftwards in the right
/// image. Output pixels are disparity / max_disparity in [0, 1].
Image stereo_disparity(const Image& left, const Image& right, int max_disparity,
                       int block_radius = 3);

/// Edge detection: Gaussian blur + Sobel magnitude + threshold.
Image edge_detect(const Image& src, float thresh = 0.25f);

/// Template matching by normalized cross-correlation.
struct MatchResult {
  int x = 0;
  int y = 0;
  double score = -1.0;  ///< NCC in [-1, 1]
};
/// Finds the patch of `scene` best matching `templ`. Throws when the
/// template does not fit into the scene.
MatchResult match_template(const Image& scene, const Image& templ);

/// Motion detection: thresholded frame difference; returns the changed-pixel
/// ratio in [0, 1] and optionally the binary motion mask.
struct MotionResult {
  double changed_ratio = 0.0;
  Image mask;
};
MotionResult detect_motion(const Image& frame0, const Image& frame1,
                           float thresh = 0.08f);

}  // namespace rt::img
