#pragma once
// Convolution building blocks shared by the vision tasks.

#include <array>

#include "img/image.hpp"

namespace rt::img {

/// 3x3 convolution with edge clamping; kernel in row-major order.
Image convolve3x3(const Image& src, const std::array<float, 9>& kernel);

/// Separable Gaussian blur (5-tap binomial approximation).
Image gaussian_blur5(const Image& src);

/// Sobel gradient magnitude, normalized into [0, 1].
Image sobel_magnitude(const Image& src);

/// Binary threshold: pixel >= threshold ? 1 : 0.
Image threshold(const Image& src, float thresh);

/// Absolute per-pixel difference; dimension-checked.
Image abs_diff(const Image& a, const Image& b);

}  // namespace rt::img
