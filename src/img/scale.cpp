#include "img/scale.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rt::img {

Image resize(const Image& src, int new_w, int new_h, ScaleFilter filter) {
  if (new_w <= 0 || new_h <= 0) {
    throw std::invalid_argument("resize: non-positive target dimensions");
  }
  if (src.empty()) throw std::invalid_argument("resize: empty source");
  Image out(new_w, new_h);
  const float sx = static_cast<float>(src.width()) / static_cast<float>(new_w);
  const float sy = static_cast<float>(src.height()) / static_cast<float>(new_h);
  for (int y = 0; y < new_h; ++y) {
    for (int x = 0; x < new_w; ++x) {
      // Center-aligned mapping.
      const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
      if (filter == ScaleFilter::kNearest) {
        out.at(x, y) = src.at_clamped(static_cast<int>(std::lround(fx)),
                                      static_cast<int>(std::lround(fy)));
      } else {
        out.at(x, y) = src.sample_bilinear(fx, fy);
      }
    }
  }
  return out;
}

double level_fraction(int level, int num_levels) {
  if (num_levels < 1) throw std::invalid_argument("level_fraction: num_levels < 1");
  if (level < 1 || level > num_levels) {
    throw std::invalid_argument("level_fraction: level out of range");
  }
  if (num_levels == 1) return 1.0;
  // Smallest level keeps 1/num_levels of the linear size; the largest keeps
  // everything.
  return static_cast<double>(level) / static_cast<double>(num_levels);
}

Image scale_to_level(const Image& src, int level, int num_levels,
                     ScaleFilter filter) {
  const double f = level_fraction(level, num_levels);
  const int w = std::max(1, static_cast<int>(std::lround(src.width() * f)));
  const int h = std::max(1, static_cast<int>(std::lround(src.height() * f)));
  if (w == src.width() && h == src.height()) return src;
  return resize(src, w, h, filter);
}

Image round_trip(const Image& src, int level, int num_levels, ScaleFilter filter) {
  const Image down = scale_to_level(src, level, num_levels, filter);
  if (down.width() == src.width() && down.height() == src.height()) return down;
  return resize(down, src.width(), src.height(), filter);
}

std::size_t level_payload_bytes(int width, int height, int level, int num_levels) {
  const double f = level_fraction(level, num_levels);
  const auto w = static_cast<std::size_t>(
      std::max(1, static_cast<int>(std::lround(width * f))));
  const auto h = static_cast<std::size_t>(
      std::max(1, static_cast<int>(std::lround(height * f))));
  return w * h;  // one byte per pixel
}

}  // namespace rt::img
