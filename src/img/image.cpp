#include "img/image.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace rt::img {

Image::Image(int width, int height, float fill)
    : width_(width), height_(height) {
  if (width < 0 || height < 0) {
    throw std::invalid_argument("Image: negative dimensions");
  }
  pixels_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
                 fill);
}

float& Image::at(int x, int y) {
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

float Image::at(int x, int y) const {
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

float Image::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

float Image::sample_bilinear(float x, float y) const {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const float fx = x - static_cast<float>(x0);
  const float fy = y - static_cast<float>(y0);
  const float v00 = at_clamped(x0, y0);
  const float v10 = at_clamped(x0 + 1, y0);
  const float v01 = at_clamped(x0, y0 + 1);
  const float v11 = at_clamped(x0 + 1, y0 + 1);
  const float top = v00 + fx * (v10 - v00);
  const float bot = v01 + fx * (v11 - v01);
  return top + fy * (bot - top);
}

void Image::clamp01() {
  for (auto& p : pixels_) p = std::clamp(p, 0.0f, 1.0f);
}

double Image::mean() const {
  if (pixels_.empty()) return 0.0;
  double sum = 0.0;
  for (const float p : pixels_) sum += p;
  return sum / static_cast<double>(pixels_.size());
}

void Image::save_pgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_pgm: cannot open " + path);
  out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  for (const float p : pixels_) {
    const float clamped = std::clamp(p, 0.0f, 1.0f);
    out.put(static_cast<char>(static_cast<unsigned char>(clamped * 255.0f + 0.5f)));
  }
  if (!out) throw std::runtime_error("save_pgm: write failed for " + path);
}

Image Image::load_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_pgm: cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "P5") throw std::runtime_error("load_pgm: not a P5 PGM: " + path);
  auto next_int = [&]() -> int {
    // Skip whitespace and '#' comment lines between header tokens.
    for (;;) {
      const int c = in.peek();
      if (c == '#') {
        std::string line;
        std::getline(in, line);
      } else if (std::isspace(c)) {
        in.get();
      } else {
        break;
      }
    }
    int v = -1;
    in >> v;
    if (!in || v < 0) throw std::runtime_error("load_pgm: bad header in " + path);
    return v;
  };
  const int w = next_int();
  const int h = next_int();
  const int maxval = next_int();
  if (w <= 0 || h <= 0 || maxval <= 0 || maxval > 255) {
    throw std::runtime_error("load_pgm: unsupported dimensions/maxval in " + path);
  }
  in.get();  // the single whitespace byte before the raster
  Image im(w, h);
  std::vector<unsigned char> raster(static_cast<std::size_t>(w) *
                                    static_cast<std::size_t>(h));
  in.read(reinterpret_cast<char*>(raster.data()),
          static_cast<std::streamsize>(raster.size()));
  if (static_cast<std::size_t>(in.gcount()) != raster.size()) {
    throw std::runtime_error("load_pgm: truncated raster in " + path);
  }
  for (std::size_t i = 0; i < raster.size(); ++i) {
    im.data()[i] = static_cast<float>(raster[i]) / static_cast<float>(maxval);
  }
  return im;
}

namespace {

struct SceneObject {
  bool is_disc;
  int x, y, w, h;     // bounding box (disc: ellipse inscribed)
  float intensity;
};

std::vector<SceneObject> make_objects(int width, int height, const SceneSpec& spec,
                                      Rng& rng) {
  std::vector<SceneObject> objs;
  const int total = spec.num_rectangles + spec.num_discs;
  objs.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    SceneObject o;
    o.is_disc = i >= spec.num_rectangles;
    o.w = static_cast<int>(rng.uniform_int(width / 12 + 1, width / 4 + 2));
    o.h = static_cast<int>(rng.uniform_int(height / 12 + 1, height / 4 + 2));
    o.x = static_cast<int>(rng.uniform_int(0, std::max(0, width - o.w)));
    o.y = static_cast<int>(rng.uniform_int(0, std::max(0, height - o.h)));
    o.intensity = static_cast<float>(rng.uniform(0.15, 0.95));
    objs.push_back(o);
  }
  return objs;
}

void paint(Image& im, const std::vector<SceneObject>& objs) {
  for (const auto& o : objs) {
    const float cx = static_cast<float>(o.x) + static_cast<float>(o.w) / 2.0f;
    const float cy = static_cast<float>(o.y) + static_cast<float>(o.h) / 2.0f;
    const float rx = static_cast<float>(o.w) / 2.0f;
    const float ry = static_cast<float>(o.h) / 2.0f;
    for (int y = std::max(0, o.y); y < std::min(im.height(), o.y + o.h); ++y) {
      for (int x = std::max(0, o.x); x < std::min(im.width(), o.x + o.w); ++x) {
        if (o.is_disc) {
          const float dx = (static_cast<float>(x) - cx) / rx;
          const float dy = (static_cast<float>(y) - cy) / ry;
          if (dx * dx + dy * dy > 1.0f) continue;
        }
        im.at(x, y) = o.intensity;
      }
    }
  }
}

void add_texture(Image& im, double amplitude, Rng& rng) {
  for (auto& p : im.data()) {
    p += static_cast<float>(rng.uniform(-amplitude, amplitude));
  }
  // Deterministic high-frequency checker modulation: survives under no
  // low-pass, so downscaling provably loses it.
  for (int y = 0; y < im.height(); ++y) {
    for (int x = 0; x < im.width(); ++x) {
      const float checker = (((x ^ y) & 1) != 0) ? 1.0f : -1.0f;
      im.at(x, y) += static_cast<float>(amplitude) * 0.5f * checker;
    }
  }
  im.clamp01();
}

}  // namespace

Image make_scene(int width, int height, const SceneSpec& spec) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("make_scene: non-positive dimensions");
  }
  Rng rng(spec.seed);
  Image im(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const float gx = static_cast<float>(x) / static_cast<float>(width);
      const float gy = static_cast<float>(y) / static_cast<float>(height);
      im.at(x, y) =
          0.25f + static_cast<float>(spec.gradient_strength) * 0.5f * (gx + gy);
    }
  }
  paint(im, make_objects(width, height, spec, rng));
  add_texture(im, spec.texture_amplitude, rng);
  return im;
}

StereoPair make_stereo_pair(int width, int height, std::uint64_t seed,
                            int max_disparity) {
  if (max_disparity < 1) {
    throw std::invalid_argument("make_stereo_pair: max_disparity must be >= 1");
  }
  SceneSpec spec;
  spec.seed = seed;
  spec.texture_amplitude = 0.03;
  Rng rng(seed);
  Image base(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      base.at(x, y) = 0.3f + 0.2f * static_cast<float>(y) / static_cast<float>(height);
    }
  }
  auto objs = make_objects(width, height, spec, rng);
  StereoPair pair;
  pair.left = base;
  pair.right = base;
  pair.max_disparity = max_disparity;
  paint(pair.left, objs);
  // Shift objects left->right proportionally to an assigned depth.
  for (std::size_t i = 0; i < objs.size(); ++i) {
    const int disparity = 1 + static_cast<int>(i % static_cast<std::size_t>(max_disparity));
    objs[i].x -= disparity;
  }
  paint(pair.right, objs);
  Rng tex_rng(seed ^ 0x5EEDull);
  add_texture(pair.left, spec.texture_amplitude, tex_rng);
  Rng tex_rng2(seed ^ 0x5EEDull);
  add_texture(pair.right, spec.texture_amplitude, tex_rng2);
  return pair;
}

MotionPair make_motion_pair(int width, int height, std::uint64_t seed,
                            int moved_objects, int shift) {
  SceneSpec spec;
  spec.seed = seed;
  spec.texture_amplitude = 0.0;  // keep frames noise-free so diffs are pure motion
  Rng rng(seed);
  Image base(width, height, 0.4f);
  auto objs = make_objects(width, height, spec, rng);
  MotionPair pair;
  pair.frame0 = base;
  pair.frame1 = base;
  paint(pair.frame0, objs);
  const int moved = std::min<int>(moved_objects, static_cast<int>(objs.size()));
  for (int i = 0; i < moved; ++i) {
    objs[static_cast<std::size_t>(i)].x += shift;
    objs[static_cast<std::size_t>(i)].y += shift / 2;
  }
  paint(pair.frame1, objs);
  pair.moved_objects = moved;
  return pair;
}

Image crop(const Image& src, int x, int y, int w, int h) {
  x = std::clamp(x, 0, std::max(0, src.width() - 1));
  y = std::clamp(y, 0, std::max(0, src.height() - 1));
  w = std::clamp(w, 0, src.width() - x);
  h = std::clamp(h, 0, src.height() - y);
  Image out(w, h);
  for (int yy = 0; yy < h; ++yy) {
    for (int xx = 0; xx < w; ++xx) {
      out.at(xx, yy) = src.at(x + xx, y + yy);
    }
  }
  return out;
}

}  // namespace rt::img
