#pragma once
// Image scaling and the case study's "scaling level" abstraction.
//
// The embedded system cannot process full-resolution camera images under
// its timing constraints, so each task works on a scaled-down version. The
// paper divides the scaled image into Q_i levels; the level controls the
// size (hence setup/transfer/compute times) and the residual quality
// (PSNR of down-then-up-scaled image vs the original).

#include "img/image.hpp"

namespace rt::img {

enum class ScaleFilter {
  kNearest,
  kBilinear,
};

/// Resizes to new_w x new_h. Throws on non-positive target dimensions.
Image resize(const Image& src, int new_w, int new_h,
             ScaleFilter filter = ScaleFilter::kBilinear);

/// The linear size fraction of scaling level `level` out of `num_levels`:
/// level 1 is the smallest usable size, level == num_levels is the original
/// size (fraction 1.0). Throws unless 1 <= level <= num_levels.
double level_fraction(int level, int num_levels);

/// Downscales `src` to the given level (linear dimensions scaled by
/// level_fraction, at least 1 pixel).
Image scale_to_level(const Image& src, int level, int num_levels,
                     ScaleFilter filter = ScaleFilter::kBilinear);

/// Round trip: downscale to the level, upscale back to the original size.
/// PSNR(src, round_trip(src, ...)) is the paper's quality measure per level.
Image round_trip(const Image& src, int level, int num_levels,
                 ScaleFilter filter = ScaleFilter::kBilinear);

/// Approximate payload in bytes when transmitting the level-scaled image
/// (8-bit pixels, no compression).
std::size_t level_payload_bytes(int width, int height, int level, int num_levels);

}  // namespace rt::img
