#pragma once
// Execution-time model for the vision workloads.
//
// The paper measured its kernels on an Intel i3-2310M CPU and Nvidia GPUs;
// its motivation example pins SIFT at 300x200 to ~278 ms on the CPU and
// ~7 ms on a GT 630M. We model execution time as
//     fixed_overhead + ns_per_pixel * pixels * task_factor
// and calibrate ns_per_pixel so the 300x200 point lands on the paper's
// numbers. Only the relative magnitudes matter for the reproduction.

#include <cstddef>

#include "util/time.hpp"

namespace rt::img {

enum class TaskKind {
  kStereoVision,
  kEdgeDetection,
  kObjectRecognition,
  kMotionDetection,
};

const char* to_string(TaskKind kind);

/// Relative compute cost of each task w.r.t. the object-recognition
/// (SIFT-like) reference kernel.
double task_cost_factor(TaskKind kind);

struct ExecTimeModel {
  double cpu_ns_per_pixel = 4633.0;  ///< 278 ms / (300*200) pixels
  double gpu_ns_per_pixel = 116.0;   ///< 7 ms / (300*200) pixels
  double setup_ns_per_pixel = 55.0;  ///< scaling + packing on the client
  rt::Duration cpu_fixed = rt::Duration::microseconds(200);
  rt::Duration gpu_fixed = rt::Duration::microseconds(350);   ///< kernel launch
  rt::Duration setup_fixed = rt::Duration::microseconds(120);

  /// WCET of running the kernel locally on the embedded CPU.
  [[nodiscard]] rt::Duration local_exec(TaskKind kind, std::size_t pixels) const;
  /// Pure GPU compute time (excludes network; the server model adds that).
  [[nodiscard]] rt::Duration gpu_exec(TaskKind kind, std::size_t pixels) const;
  /// Client-side setup C_{i,1}: scaling, packing, handing to the radio.
  [[nodiscard]] rt::Duration setup_exec(std::size_t payload_pixels) const;

  /// Default model calibrated to the paper's motivation example.
  [[nodiscard]] static ExecTimeModel calibrated() { return {}; }
};

}  // namespace rt::img
