#include "img/quality.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rt::img {

namespace {
void check_pair(const Image& a, const Image& b, const char* who) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty image");
  }
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument(std::string(who) + ": dimension mismatch");
  }
}
}  // namespace

double mse(const Image& a, const Image& b) {
  check_pair(a, b, "mse");
  double acc = 0.0;
  const auto& pa = a.data();
  const auto& pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(pa.size());
}

double psnr(const Image& a, const Image& b) {
  const double e = mse(a, b);
  if (e <= 0.0) return kPsnrCap;
  const double v = 10.0 * std::log10(1.0 / e);
  return std::min(v, kPsnrCap);
}

double ssim_global(const Image& a, const Image& b) {
  check_pair(a, b, "ssim_global");
  const double n = static_cast<double>(a.size());
  double mu_a = 0.0, mu_b = 0.0;
  for (const float p : a.data()) mu_a += p;
  for (const float p : b.data()) mu_b += p;
  mu_a /= n;
  mu_b /= n;
  double var_a = 0.0, var_b = 0.0, cov = 0.0;
  const auto& pa = a.data();
  const auto& pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double da = pa[i] - mu_a;
    const double db = pb[i] - mu_b;
    var_a += da * da;
    var_b += db * db;
    cov += da * db;
  }
  var_a /= n;
  var_b /= n;
  cov /= n;
  constexpr double c1 = 0.01 * 0.01;
  constexpr double c2 = 0.03 * 0.03;
  return ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2)) /
         ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2));
}

}  // namespace rt::img
