// Admission control example: the ODM as an online gatekeeper.
//
// Tasks arrive one by one (a mode change, a plugged-in sensor, a new app).
// For each arrival the system re-runs the Offloading Decision Manager over
// the accepted set plus the candidate:
//   - if the result is feasible, the candidate is admitted and everyone's
//     offloading levels are re-balanced (earlier tasks may be demoted to
//     cheaper levels or to local execution to make room);
//   - if even the best selection violates Theorem 3, the candidate is
//     rejected and the previous configuration stays untouched.
// After the arrival sequence, the final configuration is simulated to show
// the guarantee end to end.
//
// Build & run:  ./build/examples/admission_control

#include <cmath>
#include <iostream>

#include "core/odm.hpp"
#include "server/response_model.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

rt::core::Task candidate(const std::string& name, int period_ms, int local_ms,
                         int setup_ms, int r_ms, double benefit) {
  using namespace rt;
  using namespace rt::literals;
  core::Task t = core::make_simple_task(
      name, Duration::milliseconds(period_ms), Duration::milliseconds(local_ms),
      Duration::milliseconds(setup_ms), Duration::milliseconds(local_ms));
  t.benefit = core::BenefitFunction(
      {{0_ms, benefit * 0.2}, {Duration::milliseconds(r_ms), benefit}});
  return t;
}

}  // namespace

int main() {
  using namespace rt;
  using namespace rt::literals;

  std::cout << "=== Online admission control with the ODM ===\n\n";

  const std::vector<core::Task> arrivals{
      candidate("camera", 100, 30, 4, 30, 8.0),
      candidate("lidar", 200, 50, 8, 60, 10.0),
      candidate("audio", 50, 8, 2, 20, 3.0),
      candidate("mapper", 400, 120, 20, 120, 14.0),   // too big: rejected
      candidate("greedy-hog", 60, 45, 6, 25, 20.0),   // 0.75 local: rejected
      candidate("telemetry", 500, 40, 4, 100, 2.0),   // small: fits late
  };

  core::TaskSet accepted;
  Table log({"arrival", "verdict", "density after", "objective after",
             "offloaded tasks"});
  for (const auto& task : arrivals) {
    core::TaskSet trial = accepted;
    trial.push_back(task);
    const core::OdmResult res = core::decide_offloading(trial);
    if (res.feasible) {
      accepted = std::move(trial);
      std::size_t offloaded = 0;
      for (const auto& d : res.decisions) offloaded += d.offloaded() ? 1 : 0;
      log.add_row({task.name, "ADMITTED", Table::fmt(res.density, 3),
                   Table::fmt(res.claimed_objective, 1),
                   std::to_string(offloaded) + "/" +
                       std::to_string(accepted.size())});
    } else {
      log.add_row({task.name, "rejected", "-", "-", "-"});
    }
  }
  log.print(std::cout);

  const core::OdmResult final_decisions = core::decide_offloading(accepted);
  std::cout << "\nFinal configuration (" << accepted.size()
            << " tasks admitted), simulated 30 s against a flaky server:\n";
  server::ShiftedLognormalResponse srv(5_ms, std::log(25.0), 0.8, 0.1);
  sim::SimConfig cfg;
  cfg.horizon = 30_s;
  const sim::SimResult res =
      sim::simulate(accepted, final_decisions.decisions, srv, cfg);
  sim::per_task_report(accepted, res.metrics, final_decisions.decisions)
      .print(std::cout);
  std::cout << "\n" << sim::one_line_summary(res.metrics) << "\n";

  const bool ok = res.metrics.total_deadline_misses() == 0;
  std::cout << (ok ? "Every admitted task met every deadline."
                   : "UNEXPECTED: deadline misses!")
            << "\n";
  return ok ? 0 : 1;
}
