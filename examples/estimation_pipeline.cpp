// Estimation pipeline example: the paper's full software architecture
// (Section 3.1) end to end on a component nobody gave us a model for.
//
//   1. Benefit & Response Time Estimator: probe the (black box) server,
//      collect response samples, fit an empirical success-probability
//      curve at chosen percentiles.
//   2. Turn the measured curve into a valid benefit function
//      (make_monotone_benefit cleans plateaus/inversions).
//   3. Offloading Decision Manager: MCKP + Theorem 3 over the measured
//      curves.
//   4. Runtime: split-deadline EDF with compensations against the *same*
//      black box, verifying that the measured success rates materialize.
//
// Build & run:  ./build/examples/estimation_pipeline

#include <cmath>
#include <iostream>

#include "core/odm.hpp"
#include "server/bursty.hpp"
#include "server/gpu_server.hpp"
#include "server/estimator.hpp"
#include "sim/report.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace rt;
  using namespace rt::literals;

  std::cout << "=== From measurements to guarantees: the estimation "
               "pipeline ===\n\n";

  // The black box: a bursty shared component we know nothing about.
  auto black_box = server::make_default_bursty(2024);

  // --- 1. Probe it -----------------------------------------------------
  Rng probe_rng(1);
  server::Request probe;
  probe.payload_bytes = 64 * 1024;
  const std::vector<Duration> samples = server::collect_response_samples(
      *black_box, probe, /*inter_send=*/120_ms, /*n=*/600, probe_rng);
  black_box->reset();  // profiling done; the runtime starts fresh

  const auto curve =
      server::build_success_curve(samples, {50, 70, 80, 90, 95, 99});
  std::cout << "Measured success curve (600 probes):\n";
  Table curve_table({"percentile-derived r", "P[response <= r]"});
  for (const auto& pt : curve) {
    curve_table.add_row({pt.response_time.to_string(),
                         Table::fmt(pt.success_probability, 3)});
  }
  curve_table.print(std::cout);

  // --- 2. Benefit functions from the measurements -----------------------
  // Three sensor tasks share the component; their benefit is quality scaled
  // by the success probability of getting the rich result in time.
  struct Spec {
    const char* name;
    Duration period;
    Duration local;
    Duration setup;
    double quality;  // value of a timely high-fidelity result
  };
  const Spec specs[] = {
      {"fusion", 400_ms, 90_ms, 9_ms, 10.0},
      {"tracker", 250_ms, 60_ms, 6_ms, 6.0},
      {"logger", 1000_ms, 120_ms, 12_ms, 3.0},
  };
  core::TaskSet tasks;
  for (const auto& s : specs) {
    core::Task t = core::make_simple_task(s.name, s.period, s.local, s.setup,
                                          s.local);
    std::vector<core::BenefitPoint> points;
    for (const auto& pt : curve) {
      if (pt.response_time >= t.deadline) continue;
      points.push_back({pt.response_time, s.quality * pt.success_probability});
    }
    t.benefit = core::make_monotone_benefit(/*local_value=*/s.quality * 0.2,
                                            std::move(points));
    tasks.push_back(std::move(t));
  }

  // --- 3. Decide ---------------------------------------------------------
  const core::OdmResult odm = core::decide_offloading(tasks);
  std::cout << "\nODM decisions (Theorem 3 density "
            << Table::fmt(odm.density, 3) << "):\n";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::cout << "  " << tasks[i].name << ": " << odm.decisions[i].to_string()
              << "\n";
  }

  // --- 4. Run against the same black box ---------------------------------
  sim::SimConfig cfg;
  cfg.horizon = 120_s;
  const sim::SimResult res = sim::simulate(tasks, odm.decisions, *black_box, cfg);
  std::cout << "\n120 s against the live component:\n";
  sim::per_task_report(tasks, res.metrics, odm.decisions).print(std::cout);

  std::cout << "\nMeasured-vs-achieved timeliness per offloaded task:\n";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& m = res.metrics.per_task[i];
    if (!odm.decisions[i].offloaded() || m.offload_attempts == 0) continue;
    const double achieved = static_cast<double>(m.timely_results) /
                            static_cast<double>(m.offload_attempts);
    const double predicted = server::success_probability(
        samples, odm.decisions[i].response_time);
    std::cout << "  " << tasks[i].name << ": predicted "
              << Table::fmt(predicted, 3) << ", achieved "
              << Table::fmt(achieved, 3) << "\n";
  }
  std::cout << "\n" << sim::one_line_summary(res.metrics) << "\n"
            << (res.metrics.total_deadline_misses() == 0
                    ? "Zero deadline misses: the guarantee never depended on "
                      "the estimates being right."
                    : "UNEXPECTED: misses!")
            << "\n";
  return res.metrics.total_deadline_misses() == 0 ? 0 : 1;
}
