// Unreliable-server stress example: what happens to the same task set as
// the server degrades from "private GPU box" to "completely dead"?
//
// The answer the library is built to give: the achieved benefit degrades
// gracefully toward the all-local baseline, and the deadline-miss count
// stays at zero the whole way down -- the compensation mechanism decouples
// timing safety from server behaviour.
//
// Build & run:  ./build/examples/unreliable_server

#include <cmath>
#include <iostream>
#include <memory>

#include "core/odm.hpp"
#include "core/workload.hpp"
#include "server/gpu_server.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace rt;
  using namespace rt::literals;

  std::cout << "=== Graceful degradation under an unreliable server ===\n\n";

  // A 12-task workload in the paper Section 6.2 style, but with quality
  // benefits instead of probabilities so the numbers are tangible.
  Rng rng(31337);
  core::RandomTasksetConfig wl;
  wl.num_tasks = 12;
  wl.total_local_utilization = 0.45;
  wl.period_min = 100_ms;
  wl.period_max = 600_ms;
  core::TaskSet tasks = core::make_random_taskset(rng, wl);
  for (auto& t : tasks) {
    // Rescale benefit values to a 0..10 quality score with a local floor.
    std::vector<core::BenefitPoint> pts = t.benefit.points();
    for (auto& p : pts) p.value = 1.0 + 9.0 * p.value;
    t.benefit = core::BenefitFunction(std::move(pts));
  }

  const core::OdmResult odm = core::decide_offloading(tasks);
  std::size_t offloaded = 0;
  for (const auto& d : odm.decisions) offloaded += d.offloaded() ? 1 : 0;
  std::cout << "ODM offloads " << offloaded << "/" << tasks.size()
            << " tasks (Theorem 3 density " << Table::fmt(odm.density, 3)
            << ")\n\n";

  struct Row {
    const char* label;
    std::unique_ptr<server::ResponseModel> model;
  };
  std::vector<Row> rows;
  rows.push_back({"private server (idle)",
                  server::make_scenario_server(server::Scenario::kIdle, 1)});
  rows.push_back({"shared server (not busy)",
                  server::make_scenario_server(server::Scenario::kNotBusy, 2)});
  rows.push_back({"overloaded server (busy)",
                  server::make_scenario_server(server::Scenario::kBusy, 3)});
  rows.push_back({"flaky WLAN (30% drops)",
                  std::make_unique<server::ShiftedLognormalResponse>(
                      10_ms, std::log(60.0), 0.8, 0.30)});
  rows.push_back({"dead server", std::make_unique<server::NeverResponds>()});

  Table table({"server condition", "timely results", "compensations",
               "deadline misses", "total benefit", "vs all-local"});

  // The floor: everything local (or compensated), nothing ever returns.
  server::NeverResponds dead;
  sim::SimConfig cfg;
  cfg.horizon = 30_s;
  cfg.seed = 99;
  const double floor_benefit =
      sim::simulate(tasks, odm.decisions, dead, cfg).metrics.total_benefit();

  for (auto& row : rows) {
    const sim::SimResult res = sim::simulate(tasks, odm.decisions, *row.model, cfg);
    table.add_row({row.label, std::to_string(res.metrics.total_timely_results()),
                   std::to_string(res.metrics.total_compensations()),
                   std::to_string(res.metrics.total_deadline_misses()),
                   Table::fmt(res.metrics.total_benefit(), 1),
                   Table::fmt(res.metrics.total_benefit() / floor_benefit, 2) +
                       "x"});
  }
  table.print(std::cout);
  std::cout << "\nThe benefit column degrades with the server; the miss "
               "column does not move. That is the contract.\n";
  return 0;
}
