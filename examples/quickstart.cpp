// Quickstart: the smallest end-to-end use of the library.
//
//   1. describe sporadic tasks with offloading phases and benefit functions,
//   2. let the Offloading Decision Manager pick what to offload (MCKP + the
//      Theorem 3 schedulability test),
//   3. run the split-deadline EDF runtime against an unreliable server and
//      watch the compensation mechanism keep every deadline.
//
// Build & run:  ./build/examples/quickstart

#include <cmath>
#include <iostream>

#include "core/odm.hpp"
#include "server/response_model.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace rt;
  using namespace rt::literals;

  // --- 1. The task set -----------------------------------------------------
  // A camera pipeline task: 40 ms locally, or 4 ms of setup + an offload
  // whose benefit grows with the response-time budget we grant the server.
  core::Task camera = core::make_simple_task(
      "camera-pipeline", /*period=*/100_ms, /*local_wcet=*/40_ms,
      /*setup_wcet=*/4_ms, /*compensation_wcet=*/40_ms);
  camera.benefit = core::BenefitFunction({
      {0_ms, 1.0},    // G(0): quality of the local (fallback) result
      {20_ms, 5.0},   // offload, estimated worst-case response 20 ms
      {50_ms, 9.0},   // offload, richer input, response budget 50 ms
  });

  // A control task that must stay local (no offload points).
  core::Task control = core::make_simple_task("control-loop", 50_ms, 10_ms,
                                              1_ms, 10_ms);
  control.benefit = core::BenefitFunction::local_only(0.5);

  const core::TaskSet tasks{camera, control};

  // --- 2. Offloading decisions --------------------------------------------
  const core::OdmResult odm = core::decide_offloading(tasks);
  std::cout << "ODM decisions (feasible=" << std::boolalpha << odm.feasible
            << ", Theorem 3 density=" << odm.density << "):\n";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::cout << "  " << tasks[i].name << ": " << odm.decisions[i].to_string()
              << "\n";
  }

  // --- 3. Simulate against a flaky server ---------------------------------
  // Heavy-tailed responses around ~25 ms with 5% drops: many results arrive
  // inside the 50 ms budget, the rest are absorbed by compensations.
  server::ShiftedLognormalResponse srv(5_ms, std::log(20.0), 0.7,
                                       /*drop_probability=*/0.05);
  sim::SimConfig cfg;
  cfg.horizon = 10_s;
  cfg.seed = 1;
  const sim::SimResult res = sim::simulate(tasks, odm.decisions, srv, cfg);

  std::cout << "\nSimulated 10s: " << res.metrics.summary() << "\n";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& m = res.metrics.per_task[i];
    std::cout << "  " << tasks[i].name << ": " << m.released << " jobs, "
              << m.timely_results << " timely results, " << m.compensations
              << " compensations, " << m.deadline_misses
              << " deadline misses, benefit " << m.accrued_benefit << "\n";
  }
  std::cout << "\nNo deadline was missed even though the server dropped or "
               "delayed results -- the local compensation is the safety "
               "net.\n";
  return res.metrics.total_deadline_misses() == 0 ? 0 : 1;
}
