// Robot vision example: the paper's case study as an application.
//
// A mobile robot runs four image-processing tasks (stereo vision, edge
// detection, object recognition, motion detection) over camera frames. The
// embedded CPU only affords heavily scaled images; a GPU server over WLAN
// can process richer ones -- but with no worst-case response guarantee.
// This example builds the whole pipeline, actually runs the vision kernels
// on a scaled frame, asks the ODM for offloading decisions, and simulates a
// mission against a moderately loaded server.
//
// Build & run:  ./build/examples/robot_vision

#include <iostream>

#include "casestudy/case_study.hpp"
#include "core/odm.hpp"
#include "img/quality.hpp"
#include "img/scale.hpp"
#include "img/vision.hpp"
#include "util/table.hpp"

int main() {
  using namespace rt;
  std::cout << "=== Robot vision mission ===\n\n";

  // --- Run the actual vision kernels once on a (scaled) frame -------------
  // This is what "local execution at level 1" means physically.
  std::cout << "Local processing demo on a 320x240 frame (level-1 scale):\n";
  const img::StereoPair stereo = img::make_stereo_pair(320, 240, 7);
  const img::Image disparity = img::stereo_disparity(stereo.left, stereo.right,
                                                     stereo.max_disparity, 2);
  std::cout << "  stereo: mean disparity "
            << Table::fmt(disparity.mean() * stereo.max_disparity, 2)
            << " px\n";
  const img::Image edges = img::edge_detect(stereo.left);
  std::cout << "  edges:  " << Table::fmt(edges.mean() * 100.0, 1)
            << "% edge pixels\n";
  const img::Image templ = img::crop(stereo.left, 140, 90, 24, 24);
  const img::MatchResult match = img::match_template(stereo.left, templ);
  std::cout << "  objrec: template found at (" << match.x << "," << match.y
            << ") score " << Table::fmt(match.score, 3) << "\n";
  const img::MotionPair motion = img::make_motion_pair(320, 240, 9, 2, 5);
  std::cout << "  motion: "
            << Table::fmt(
                   img::detect_motion(motion.frame0, motion.frame1).changed_ratio *
                       100.0,
                   2)
            << "% of pixels changed\n\n";

  // --- Build the case study (benefit functions, WCETs, estimates) ---------
  casestudy::CaseStudyConfig cs_cfg;
  const casestudy::CaseStudy study = casestudy::build_case_study(cs_cfg);
  core::TaskSet tasks = study.task_set();
  // Mission priorities: motion detection matters most while navigating.
  tasks[0].weight = 2.0;  // stereo
  tasks[1].weight = 1.0;  // edges
  tasks[2].weight = 3.0;  // object recognition
  tasks[3].weight = 4.0;  // motion

  const core::OdmResult odm = core::decide_offloading(tasks);
  std::cout << "Offloading decisions (density " << Table::fmt(odm.density, 3)
            << " <= 1):\n";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::cout << "  " << tasks[i].name << ": " << odm.decisions[i].to_string()
              << "\n";
  }

  // --- Fly the mission against a shared GPU server -------------------------
  auto srv = server::make_scenario_server(server::Scenario::kNotBusy, 77);
  sim::SimConfig sim_cfg;
  sim_cfg.horizon = Duration::seconds(60);
  sim_cfg.benefit_semantics = sim::BenefitSemantics::kQualityValue;
  const sim::SimResult res =
      sim::simulate(tasks, odm.decisions, *srv, sim_cfg, study.request_profile());

  std::cout << "\n60 s mission against the 'not busy' server:\n";
  Table table({"task", "jobs", "timely", "compensated", "misses",
               "mean response", "weighted quality"});
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& m = res.metrics.per_task[i];
    table.add_row({tasks[i].name, std::to_string(m.released),
                   std::to_string(m.timely_results),
                   std::to_string(m.compensations),
                   std::to_string(m.deadline_misses),
                   m.observed_response_ms.empty()
                       ? std::string("-")
                       : Table::fmt(m.observed_response_ms.mean(), 1) + " ms",
                   Table::fmt(m.accrued_benefit, 1)});
  }
  table.print(std::cout);
  std::cout << "\nTotal weighted image quality: "
            << Table::fmt(res.metrics.total_benefit(), 1)
            << " (deadline misses: " << res.metrics.total_deadline_misses()
            << ")\n";
  return res.metrics.total_deadline_misses() == 0 ? 0 : 1;
}
