// Schedulability explorer: how the estimated worst-case response time R
// trades benefit against schedulability.
//
// For a single offloaded task inside a loaded system, the explorer sweeps R
// and prints the Theorem 3 density, the split deadlines D1/D2, and the
// verdicts of both the linear-bound test and the exact processor-demand
// analysis. It makes tangible why the ODM cannot just grant everyone the
// largest R: the density term (C1 + C2)/(D - R) blows up as R approaches D.
//
// Build & run:  ./build/examples/schedulability_explorer

#include <iostream>
#include <vector>

#include "core/deadline.hpp"
#include "core/schedulability.hpp"
#include "exp/batch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

// One printed line of the sweep, computed independently per R.
struct SweepRow {
  rt::Duration r;
  std::vector<std::string> cells;
  bool thm3_feasible = false;
};

}  // namespace

int main() {
  using namespace rt;
  using namespace rt::literals;

  // The system: three local tasks at 0.55 background utilization plus one
  // offloadable vision task.
  core::TaskSet tasks;
  tasks.push_back(core::make_simple_task("ctl-a", 40_ms, 8_ms, 1_ms, 8_ms));
  tasks.push_back(core::make_simple_task("ctl-b", 100_ms, 15_ms, 1_ms, 15_ms));
  tasks.push_back(core::make_simple_task("logger", 500_ms, 100_ms, 1_ms, 100_ms));

  core::Task vision = core::make_simple_task("vision", 200_ms, 60_ms, 8_ms, 60_ms);
  // A dense benefit ladder so every R in the sweep is a real choice.
  {
    std::vector<core::BenefitPoint> pts{{0_ms, 1.0}};
    for (int r = 10; r <= 190; r += 10) {
      pts.push_back({Duration::milliseconds(r),
                     1.0 + 9.0 * static_cast<double>(r) / 190.0});
    }
    vision.benefit = core::BenefitFunction(std::move(pts));
  }
  tasks.push_back(vision);

  std::cout << "=== R sweep for task 'vision' (C=60ms, C1=8ms, C2=60ms, "
               "D=T=200ms) amid 0.55 background utilization ===\n\n";

  Table table({"R", "benefit G(R)", "D1", "D2", "Thm3 density", "Thm3",
               "exact PDA"});

  // Each R is an independent feasibility question; fan the rows across the
  // BatchRunner workers (the exact PDA is the costly part) and print them
  // in order afterwards.
  std::vector<SweepRow> rows(20);
  exp::BatchConfig batch;
  batch.jobs = util::default_jobs();
  exp::BatchRunner runner(batch);
  runner.for_each(rows.size(), [&](std::size_t i, Rng&) {
    const int r_ms = static_cast<int>(i) * 10;
    const Duration r = Duration::milliseconds(r_ms);
    core::DecisionVector ds = core::all_local(tasks.size());
    std::size_t level = 0;
    if (r_ms > 0) {
      // Find the benefit level at this R.
      for (std::size_t j = 1; j < vision.benefit.size(); ++j) {
        if (vision.benefit.point(j).response_time == r) level = j;
      }
      ds[3] = core::Decision::offload(level, r);
    }
    const UtilFp density = core::total_density(tasks, ds);
    const bool t3 = core::theorem3_feasible(tasks, ds);
    const bool pda = core::pda_feasible(tasks, ds).feasible;

    std::string d1 = "-", d2 = "-";
    if (r_ms > 0) {
      const core::SplitDeadlines split = core::split_deadlines(tasks[3], r, level);
      d1 = split.d1.to_string();
      d2 = split.d2.to_string();
    }
    rows[i] = SweepRow{
        r,
        {r.to_string(), Table::fmt(tasks[3].benefit.value_at(r), 2), d1, d2,
         density.is_saturated() ? "inf" : Table::fmt(density.to_double(), 3),
         t3 ? "feasible" : "-", pda ? "feasible" : "-"},
        t3};
  });

  Duration last_feasible = Duration::zero();
  for (SweepRow& row : rows) {
    if (row.thm3_feasible) last_feasible = row.r;
    table.add_row(std::move(row.cells));
  }
  table.print(std::cout);

  std::cout << "\nLargest Theorem 3-feasible R: " << last_feasible.to_string()
            << " -- the best benefit the ODM could grant this task given the "
               "background load.\nNote where the exact PDA keeps accepting "
               "after the linear bound gives up: that is the price of an "
               "O(n) closed-form test.\n";
  return 0;
}
